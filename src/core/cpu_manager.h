// The user-level CPU manager (paper §4), transport-agnostic.
//
// The manager keeps connected applications in a circular list, accumulates
// their bus-transaction samples (delivered twice per quantum through the
// shared arena in the real system, or read from simulated counters), and at
// every quantum boundary (1) updates the statistics of the jobs that ran,
// (2) moves them to the end of the list, and (3) elects the next quantum's
// gang via the fitness metric. The same class drives both the simulator
// adapter (core::ManagedScheduler) and the native runtime
// (runtime::ManagerServer) — only the sampling and block/unblock transports
// differ.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bandwidth_stats.h"
#include "core/credit_scheduler.h"
#include "core/election.h"
#include "core/journal.h"
#include "core/predictor.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/time.h"

namespace bbsched::core {

/// Which BBW/thread estimate the election consumes.
enum class PolicyKind {
  kLatestQuantum,  ///< Eq. 1: latest quantum's rate
  kQuantaWindow,   ///< Eq. 2: moving-window average
  /// Exponentially weighted average — §4's suggested technique for widening
  /// the effective window without losing responsiveness ("exponential
  /// reduction of the weight of older samples").
  kExponential,
};

[[nodiscard]] const char* to_string(PolicyKind kind);

/// Staleness / degradation policy: what the manager does when a running
/// application's counter feed stops delivering samples (crashed client,
/// hung updater, failed counter backend). The ladder per feed is
///   live → hold (≤ hold_quanta full-miss quanta: keep the last-good
///   estimate) → decay (geometric approach toward initial_estimate_tps) →
///   quarantine (estimate written off to the initial value);
/// manager-wide, when *every* running feed is dead for dead_feed_quanta
/// consecutive quanta, elections fall back to round-robin gangs (list-order
/// first-fit) until any feed revives. See docs/ROBUSTNESS.md.
struct StalenessConfig {
  /// Full-miss quanta over which the last-good estimate is held unchanged.
  int hold_quanta = 2;
  /// Per-quantum geometric factor of the decay toward the initial estimate
  /// (estimate' = initial + (estimate - initial) * decay_factor).
  double decay_factor = 0.5;
  /// Miss streak at which the feed is quarantined (initial estimate used).
  int quarantine_after = 8;
  /// Consecutive quanta with zero live feeds before the manager degrades to
  /// round-robin gang election.
  int dead_feed_quanta = 4;
  /// Reject ceiling for one sample, as a multiple of the whole bus's
  /// capacity over a quantum (counter glitches and post-wrap catch-up reads
  /// can report deltas no real bus could have carried). 0 disables.
  double max_sample_factor = 8.0;
};

struct ManagerConfig {
  PolicyKind policy = PolicyKind::kQuantaWindow;

  /// Scheduling quantum (paper: 200 ms — twice the Linux quantum, which
  /// avoids conflicting user/kernel-level decisions).
  sim::SimTime quantum_us = 200 * sim::kUsPerMs;

  /// Bandwidth samples collected per quantum (paper: 2).
  int samples_per_quantum = 2;

  /// Moving-window length in quanta for kQuantaWindow (paper: 5).
  std::size_t window_len = 5;

  /// Newest-sample weight for kExponential, in (0, 1]. 0.33 gives an
  /// effective memory of ~5 quanta (2/alpha - 1), matching the paper's
  /// window at equal responsiveness-smoothing tradeoff.
  double ewma_alpha = 0.33;

  /// Total schedulable bus bandwidth in transactions/µs (paper: the
  /// sustained STREAM rate, 29.5).
  double total_bus_bw_tps = 29.5;

  /// Post-head candidate selection rule (kFitness = the paper's Eq. 1;
  /// alternatives exist for the design ablation).
  ElectionRule election_rule = ElectionRule::kFitness;

  /// When true, elections use the model-driven algorithm (predictor.h, the
  /// paper's §6 future work) instead of the Eq.-1 traversal.
  bool use_predictive = false;
  PredictorConfig predictor{};
  PredictiveObjective predictive_objective =
      PredictiveObjective::kMaxThroughput;

  /// BBW/thread assumed for applications that have never been observed
  /// running. The fair bandwidth share per processor is the neutral choice:
  /// a fresh job is neither an attractive low-bandwidth co-runner nor a
  /// bus hog until it has been measured. (With 0 instead, a loaded-bus
  /// election would stampede onto every newcomer.)
  double initial_estimate_tps = 29.5 / 4.0;

  /// What to do when counter feeds go silent or lie (defaults are active
  /// but unreachable on a fault-free feed: every running app posts samples
  /// every quantum, so behaviour is bit-identical to the pre-hardening
  /// manager until a fault actually occurs).
  StalenessConfig staleness{};

  /// Credit-based bandwidth reservations (core/credit_scheduler.h,
  /// docs/POLICIES.md). Disabled by default: with qos.enabled == false the
  /// manager's behaviour is bit-identical to a build without the tier.
  /// When enabled, qos takes precedence over use_predictive.
  QosConfig qos{};
};

/// Connected-application record.
struct ManagedApp {
  int id = -1;
  std::string name;
  int nthreads = 1;
  BandwidthTracker tracker;
  bool ran_last_quantum = false;

  // ---- staleness-policy state (docs/ROBUSTNESS.md) ----
  int samples_this_quantum = 0;  ///< valid samples posted since last election
  int miss_streak = 0;           ///< consecutive full-miss quanta while running
  /// Decayed estimate override; NaN = none (tracker/initial value applies).
  double decayed_estimate = std::nan("");
  bool quarantined = false;

  ManagedApp(int id_, std::string name_, int nthreads_, std::size_t window,
             double ewma_alpha = 0.33)
      : id(id_), name(std::move(name_)), nthreads(nthreads_),
        tracker(nthreads_, window, ewma_alpha) {}

  /// Position on the per-feed degradation ladder.
  [[nodiscard]] obs::DegradationState feed_state() const noexcept {
    if (quarantined) return obs::DegradationState::kQuarantined;
    if (!std::isnan(decayed_estimate)) return obs::DegradationState::kDecaying;
    if (miss_streak > 0) return obs::DegradationState::kHolding;
    return obs::DegradationState::kLive;
  }
};

class CpuManager {
 public:
  explicit CpuManager(const ManagerConfig& cfg)
      : cfg_(cfg), credit_(cfg.qos, cfg.total_bus_bw_tps) {}

  /// Registers an application (the paper's 'connection' message). Returns
  /// the manager-assigned app id. New applications join the list tail.
  int connect(const std::string& name, int nthreads);

  /// Removes an application (job completion / 'disconnection' message).
  void disconnect(int app_id);

  /// Posts a bus-transaction sample for a *running* application:
  /// `delta_transactions` accumulated across its threads since the last
  /// sample (the shared-arena update). Input is validated, not trusted:
  /// non-finite deltas are rejected (and count as a missed sample),
  /// negative deltas (counter wraparound) clamp to zero, and implausibly
  /// large deltas clamp to the staleness policy's ceiling — each with a
  /// fault counter and, when tracing, a kFault event stamped `now_us`.
  void record_sample(int app_id, double delta_transactions,
                     std::uint64_t now_us = 0);

  /// Ends the current quantum and elects the next gang:
  ///  * folds pending samples of the apps that ran into their trackers,
  ///  * moves previously running apps to the end of the list,
  ///  * runs the fitness election for `nprocs` processors.
  /// Returns elected app ids (allocation order) in a buffer reused across
  /// elections — read it before the next call, copy it to keep it. `now_us`
  /// timestamps the observability events of this election (simulated time
  /// in the simulator, monotonic wall time in the native runtime).
  const ElectionResult& schedule_quantum(int nprocs,
                                         std::uint64_t now_us = 0);

  /// BBW/thread estimate the active policy would use right now.
  [[nodiscard]] double policy_estimate(int app_id) const;

  /// Force-quarantines an application's feed: the estimate is written off
  /// to the initial (fair-share) value immediately, exactly as if the feed
  /// had missed `quarantine_after` quanta. Used by the serving layer when a
  /// feed is classified *adversarial* (docs/ROBUSTNESS.md §8) — a client
  /// caught lying loses measurement-driven treatment at once instead of
  /// poisoning elections while the miss-streak ladder catches up. The feed
  /// recovers through the ordinary ladder: one valid folded sample walks it
  /// back to kLive (the serving layer withholds samples from feeds it still
  /// distrusts, which keeps them quarantined).
  void quarantine(int app_id, std::uint64_t now_us = 0);

  /// Declares (or updates; frac == 0 releases) a bus-bandwidth reservation
  /// for a connected application, as a fraction of total_bus_bw_tps.
  /// Admission-checked: an invalid or over-subscribing reservation is
  /// refused with a typed error, the ledger is untouched, the app stays
  /// best-effort, and a kReservationRejected fault event is recorded.
  /// Reservations only steer elections when cfg.qos.enabled is true.
  QosError set_reservation(int app_id, double frac, std::uint64_t now_us = 0);

  /// The credit ledger (reservation fractions, balances, period index).
  [[nodiscard]] const CreditScheduler& credit() const noexcept {
    return credit_;
  }

  [[nodiscard]] const ManagerConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t app_count() const noexcept { return apps_.size(); }
  [[nodiscard]] bool connected(int app_id) const {
    return apps_.contains(app_id);
  }
  [[nodiscard]] const ManagedApp& app(int app_id) const {
    return apps_.at(app_id);
  }
  /// Applications-list order (head first); exposed for tests.
  [[nodiscard]] const std::list<int>& order() const noexcept { return order_; }
  /// Apps elected by the most recent schedule_quantum().
  [[nodiscard]] const std::vector<int>& running() const noexcept {
    return running_;
  }

  /// Attaches a structured event tracer (non-owning; nullptr detaches).
  /// Every election then records one kQuantumStart plus one
  /// kElectionDecision per candidate. Costs nothing when the tracer is
  /// disabled or absent.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attaches a metrics registry (non-owning; nullptr detaches). Registers
  /// the manager's fault counters and the degradation-state gauge
  /// (docs/OBSERVABILITY.md catalog); instrument pointers are cached so the
  /// sampling path pays one null check + increment per fault.
  void set_metrics(obs::MetricsRegistry* metrics);

  /// True while elections run in round-robin fallback (all feeds dead).
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }

  /// Degradation ladder position of one application's counter feed.
  [[nodiscard]] obs::DegradationState feed_state(int app_id) const {
    return apps_.at(app_id).feed_state();
  }

  /// Elections performed so far (the quantum index of the next election).
  [[nodiscard]] std::uint64_t quantum_index() const noexcept {
    return quantum_index_;
  }

  // ---- crash recovery (core/journal.h, docs/ROBUSTNESS.md) ----

  /// Captures the complete policy state: every feed in applications-list
  /// order (preserving the rotation cursor), the staleness ladder, and the
  /// manager-wide degradation counters. Meant to be called at a quantum
  /// boundary, right after schedule_quantum().
  void snapshot(ManagerSnapshot& out) const;

  /// Primes a *fresh* manager (no applications connected) with a journaled
  /// snapshot. Feeds are not materialized immediately — clients of a
  /// restarted manager reattach one by one — but parked by name: a later
  /// connect() with a matching name and thread count adopts the journaled
  /// tracker state and its rotation position instead of cold-starting.
  /// Returns the number of feeds parked.
  int restore(const ManagerSnapshot& snap);

  /// Journaled feeds awaiting reattach (diagnostics/tests).
  [[nodiscard]] std::size_t pending_restores() const noexcept {
    return pending_restore_.size();
  }

 private:
  /// End-of-quantum staleness bookkeeping for the apps that ran: folds live
  /// feeds, advances miss streaks of silent ones along the hold → decay →
  /// quarantine ladder, and flips the manager-wide degraded mode.
  void apply_staleness_policy(std::uint64_t now_us);
  void count_fault(obs::FaultKind kind, int app_id, double value,
                   std::uint64_t now_us);

  ManagerConfig cfg_;
  std::unordered_map<int, ManagedApp> apps_;
  std::list<int> order_;       ///< circular applications list (head = front)
  std::vector<int> running_;   ///< elected in the current quantum
  int next_id_ = 0;

  obs::Tracer* tracer_ = nullptr;        ///< non-owning
  std::uint64_t quantum_index_ = 0;      ///< elections performed
  std::vector<CandidateDecision> audit_;  ///< reused election audit buffer
  std::vector<Candidate> candidates_;     ///< reused election input buffer
  ElectionResult result_;                 ///< reused election output buffer

  // ---- staleness/degradation state ----
  std::uint64_t last_election_us_ = 0;  ///< timestamp of the last election
  int dead_feed_quanta_ = 0;  ///< consecutive quanta with zero live feeds
  bool degraded_ = false;     ///< round-robin fallback active

  // ---- crash-recovery state ----
  /// A journaled feed not yet readopted: its snapshot, its position in the
  /// journaled rotation order (connect() re-inserts accordingly), and
  /// whether it belonged to the running gang at snapshot time (adoption
  /// then re-enters it into running_ so its in-flight quantum folds).
  struct PendingRestore {
    FeedSnapshot feed;
    int pos = 0;
    bool was_running = false;
  };
  /// Journaled feeds not yet readopted, keyed by application name.
  std::unordered_map<std::string, PendingRestore> pending_restore_;
  std::unordered_map<int, int> restore_pos_;  ///< app id → journal position

  // ---- metrics (non-owning; null = off) ----
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_missed_quanta_ = nullptr;
  obs::Counter* m_invalid_samples_ = nullptr;
  obs::Counter* m_negative_deltas_ = nullptr;
  obs::Counter* m_clamped_samples_ = nullptr;
  obs::Counter* m_quarantines_ = nullptr;
  obs::Counter* m_degraded_elections_ = nullptr;
  obs::Gauge* m_degradation_state_ = nullptr;

  // ---- credit/reservation QoS tier (core/credit_scheduler.h) ----
  CreditScheduler credit_;
  obs::Counter* m_qos_replenishes_ = nullptr;
  obs::Counter* m_qos_violations_ = nullptr;
  obs::Counter* m_qos_rejected_ = nullptr;
  obs::Counter* m_qos_slack_elections_ = nullptr;
  obs::Gauge* m_qos_reserved_apps_ = nullptr;
};

}  // namespace bbsched::core
