// Crash-recovery journal for the user-level CPU manager.
//
// The manager's value is its learned state: per-feed bandwidth history
// (Quanta Window / EWMA), staleness-ladder positions, and the rotation
// order that makes elections starvation-free. A manager that restarts
// without it re-learns every feed from the initial estimate — measurably
// worse elections for window_len quanta (docs/ROBUSTNESS.md). The journal
// persists that state so a supervised restart resumes where the dead
// manager stopped.
//
// Format: an append-only sequence of self-delimiting records,
//
//   [u32 magic "BBSJ"] [u32 version] [u32 payload_len] [u32 crc32(payload)]
//   [payload bytes]
//
// written whole at a bounded cadence from the manager loop. Restore scans
// forward and keeps the *last* record whose header and CRC check out; a
// torn tail (crash mid-write), a truncated file, or flipped bytes simply
// end the scan early — recovery falls back to the previous record or to
// cold-start defaults, never to a half-written snapshot
// (tests/test_journal.cc tortures every byte offset to prove it).
//
// The journal is bounded: after `max_records` appends the writer compacts
// the file to its latest record via write-to-temp + atomic rename.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bandwidth_stats.h"

namespace bbsched::core {

inline constexpr std::uint32_t kJournalMagic = 0x4a534242;  // "BBSJ"
inline constexpr std::uint32_t kJournalVersion = 1;

/// CRC-32 (IEEE 802.3, reflected) over `len` bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len) noexcept;

/// One application feed as journaled: identity plus everything the election
/// pipeline derives from its counter history.
struct FeedSnapshot {
  std::string name;
  int nthreads = 1;
  int miss_streak = 0;
  bool has_decayed_estimate = false;
  double decayed_estimate = 0.0;
  bool quarantined = false;
  TrackerSnapshot tracker;
};

/// Complete manager image at one quantum boundary. Feeds appear in
/// *pre-rotated* election order: the list order the next schedule_quantum()
/// would see after splicing the currently running gang to the tail. A
/// restored manager (whose running set is empty) then elects exactly what
/// the dead one would have elected next.
struct ManagerSnapshot {
  std::uint64_t quantum_index = 0;
  int dead_feed_quanta = 0;
  bool degraded = false;
  /// The last `running_tail` feeds were the elected gang at snapshot time.
  /// Adoption re-enters them into the running set, so the gang's in-flight
  /// quantum folds into its trackers on the first post-restore election
  /// instead of being dropped.
  int running_tail = 0;
  std::vector<FeedSnapshot> feeds;
};

/// Serializes a snapshot to the journal payload encoding (little-endian
/// fixed-width fields; no padding, no pointers).
void encode_snapshot(const ManagerSnapshot& snap, std::vector<char>& out);

/// Decodes a payload produced by encode_snapshot. Returns false on any
/// structural violation (short buffer, oversized counts/strings) — the
/// decoder never trusts its input even though the CRC already vouched for
/// it.
[[nodiscard]] bool decode_snapshot(const char* data, std::size_t len,
                                   ManagerSnapshot& out);

/// Append-only journal writer with size-bounded compaction.
class JournalWriter {
 public:
  /// `max_records` appends before the file is compacted to one record.
  explicit JournalWriter(std::string path, int max_records = 64)
      : path_(std::move(path)), max_records_(max_records) {}

  /// Appends one snapshot record (open → write whole record → close).
  /// Returns false on I/O failure; the manager treats that as advisory
  /// (journaling must never take the control plane down).
  bool append(const ManagerSnapshot& snap);

  /// Compacts the journal to this single snapshot via write-to-temp +
  /// atomic rename, reclaiming all space held by older records. `append`
  /// calls it at the max_records boundary; the manager's ENOSPC degrade
  /// ladder calls it directly as the bounded rotation step before falling
  /// back to journal-less operation (docs/ROBUSTNESS.md §9).
  bool rewrite(const ManagerSnapshot& snap);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] int records_written() const noexcept { return records_; }

 private:
  void encode_record(const ManagerSnapshot& snap,
                     std::vector<char>& record) const;
  bool write_file(const std::string& path, const std::vector<char>& record,
                  bool append) const;

  std::string path_;
  int max_records_;
  int records_ = 0;
};

/// Scans `path` and restores the newest intact snapshot into `out`.
/// Returns false when the file is missing, empty, or holds no valid record
/// — the caller cold-starts. Never throws, never crashes on garbage.
[[nodiscard]] bool load_latest_snapshot(const std::string& path,
                                        ManagerSnapshot& out);

}  // namespace bbsched::core
