#include "core/cpu_manager.h"

#include <algorithm>

namespace bbsched::core {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLatestQuantum: return "latest-quantum";
    case PolicyKind::kQuantaWindow: return "quanta-window";
    case PolicyKind::kExponential: return "ewma";
  }
  return "unknown";
}

int CpuManager::connect(const std::string& name, int nthreads) {
  assert(nthreads >= 1);
  const int id = next_id_++;
  apps_.emplace(id, ManagedApp(id, name, nthreads, cfg_.window_len,
                               cfg_.ewma_alpha));
  order_.push_back(id);
  return id;
}

void CpuManager::disconnect(int app_id) {
  apps_.erase(app_id);
  order_.remove(app_id);
  running_.erase(std::remove(running_.begin(), running_.end(), app_id),
                 running_.end());
}

void CpuManager::record_sample(int app_id, double delta_transactions) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) return;  // app disconnected between sample and post
  it->second.tracker.record_sample(delta_transactions);
}

double CpuManager::policy_estimate(int app_id) const {
  const ManagedApp& app = apps_.at(app_id);
  if (!app.tracker.observed()) return cfg_.initial_estimate_tps;
  switch (cfg_.policy) {
    case PolicyKind::kLatestQuantum:
      return app.tracker.latest_per_thread();
    case PolicyKind::kQuantaWindow:
      return app.tracker.window_per_thread();
    case PolicyKind::kExponential:
      return app.tracker.ewma_per_thread();
  }
  return 0.0;
}

ElectionResult CpuManager::schedule_quantum(int nprocs,
                                            std::uint64_t now_us) {
  const double quantum = static_cast<double>(cfg_.quantum_us);

  // (1) Update statistics of the jobs that ran during the ending quantum.
  for (int id : running_) {
    auto it = apps_.find(id);
    if (it != apps_.end()) it->second.tracker.end_quantum(quantum);
  }

  // (2) Move previously running jobs to the end of the list, preserving
  // their relative order.
  for (int id : running_) {
    auto pos = std::find(order_.begin(), order_.end(), id);
    if (pos != order_.end()) {
      order_.erase(pos);
      order_.push_back(id);
    }
  }

  // (3) Elect the next gang.
  std::vector<Candidate> candidates;
  candidates.reserve(order_.size());
  for (int id : order_) {
    const ManagedApp& app = apps_.at(id);
    candidates.push_back({id, app.nthreads, policy_estimate(id)});
  }
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  ElectionResult result =
      cfg_.use_predictive
          ? elect_predictive(candidates, nprocs, cfg_.predictor,
                             cfg_.predictive_objective)
          : elect(candidates, nprocs, cfg_.total_bus_bw_tps,
                  cfg_.election_rule, tracing ? &audit_ : nullptr);

  if (tracing) {
    tracer_->quantum_start(
        now_us, {quantum_index_, nprocs, static_cast<std::int32_t>(
                                             candidates.size())});
    if (cfg_.use_predictive) {
      // The predictive election has no per-round fitness scores; audit the
      // outcome only so the trace still explains who ran.
      audit_.resize(candidates.size());
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        audit_[i] = CandidateDecision{};
        audit_[i].app_id = candidates[i].app_id;
        audit_[i].nthreads = candidates[i].nthreads;
        audit_[i].bbw_per_thread = candidates[i].bbw_per_thread;
        const auto pos = std::find(result.elected.begin(),
                                   result.elected.end(),
                                   candidates[i].app_id);
        if (pos != result.elected.end()) {
          audit_[i].elected = true;
          audit_[i].alloc_order =
              static_cast<int>(pos - result.elected.begin());
        }
      }
    }
    for (const CandidateDecision& d : audit_) {
      obs::ElectionDecisionPayload p;
      p.quantum = quantum_index_;
      p.app_id = d.app_id;
      p.nthreads = d.nthreads;
      p.bbw_per_thread = d.bbw_per_thread;
      p.abbw_per_proc = d.abbw_per_proc;
      p.score = d.score;
      p.alloc_order = static_cast<std::int16_t>(d.alloc_order);
      p.elected = d.elected ? 1 : 0;
      p.head_default = d.head_default ? 1 : 0;
      tracer_->election_decision(now_us, p);
    }
  }
  ++quantum_index_;

  running_ = result.elected;
  for (auto& [id, app] : apps_) {
    app.ran_last_quantum =
        std::find(running_.begin(), running_.end(), id) != running_.end();
  }
  return result;
}

}  // namespace bbsched::core
