#include "core/cpu_manager.h"

#include <algorithm>
#include <cmath>

namespace bbsched::core {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLatestQuantum: return "latest-quantum";
    case PolicyKind::kQuantaWindow: return "quanta-window";
    case PolicyKind::kExponential: return "ewma";
  }
  return "unknown";
}

int CpuManager::connect(const std::string& name, int nthreads) {
  assert(nthreads >= 1);
  const int id = next_id_++;
  apps_.emplace(id, ManagedApp(id, name, nthreads, cfg_.window_len,
                               cfg_.ewma_alpha));
  order_.push_back(id);

  // Crash recovery: a reattaching application adopts its journaled feed
  // state instead of cold-starting, provided the shape still matches (a
  // changed thread count invalidates per-thread rates).
  const auto pending = pending_restore_.find(name);
  if (pending != pending_restore_.end() &&
      pending->second.feed.nthreads == nthreads) {
    const FeedSnapshot& f = pending->second.feed;
    ManagedApp& app = apps_.at(id);
    app.tracker.restore(f.tracker);
    app.miss_streak = f.miss_streak;
    app.decayed_estimate =
        f.has_decayed_estimate ? f.decayed_estimate : std::nan("");
    app.quarantined = f.quarantined;
    const int pos = pending->second.pos;
    const bool was_running = pending->second.was_running;
    restore_pos_[id] = pos;
    pending_restore_.erase(pending);

    // Preserve the journaled rotation cursor: restored feeds form a prefix
    // of the list in journal order (reattach order is arbitrary — whoever
    // reconnects first must not jump the election queue); apps without
    // journaled state queue behind them in plain arrival order.
    order_.pop_back();
    auto it = order_.begin();
    for (; it != order_.end(); ++it) {
      const auto rp = restore_pos_.find(*it);
      if (rp == restore_pos_.end() || rp->second > pos) break;
    }
    order_.insert(it, id);

    // The journaled gang re-enters the running set (in journal order, so
    // the next rotation splices it identically no matter who reattached
    // first): its in-flight quantum folds on the next election.
    if (was_running) {
      auto rit = running_.begin();
      for (; rit != running_.end(); ++rit) {
        const auto rp = restore_pos_.find(*rit);
        if (rp != restore_pos_.end() && rp->second > pos) break;
      }
      running_.insert(rit, id);
    }
  }
  return id;
}

void CpuManager::disconnect(int app_id) {
  credit_.release(app_id);
  if (m_qos_reserved_apps_ != nullptr) {
    m_qos_reserved_apps_->set(static_cast<double>(credit_.reserved_count()));
  }
  apps_.erase(app_id);
  order_.remove(app_id);
  restore_pos_.erase(app_id);
  running_.erase(std::remove(running_.begin(), running_.end(), app_id),
                 running_.end());
}

void CpuManager::snapshot(ManagerSnapshot& out) const {
  out.quantum_index = quantum_index_;
  out.dead_feed_quanta = dead_feed_quanta_;
  out.degraded = degraded_;
  out.feeds.clear();
  out.feeds.reserve(order_.size());
  const auto emit = [&](int id) {
    const ManagedApp& app = apps_.at(id);
    FeedSnapshot f;
    f.name = app.name;
    f.nthreads = app.nthreads;
    f.miss_streak = app.miss_streak;
    f.has_decayed_estimate = !std::isnan(app.decayed_estimate);
    f.decayed_estimate = f.has_decayed_estimate ? app.decayed_estimate : 0.0;
    f.quarantined = app.quarantined;
    app.tracker.snapshot(f.tracker);
    out.feeds.push_back(std::move(f));
  };
  // Emit pre-rotated: schedule_quantum() splices the currently running gang
  // to the tail before electing, and a restored manager has an empty
  // running set, so that rotation would be lost across a crash (the new
  // incarnation would re-elect the crash-time gang). Journaling the order
  // as it will be *after* the pending rotation keeps restored elections
  // identical to an uncrashed manager's (tests/test_journal.cc).
  for (int id : order_) {
    if (std::find(running_.begin(), running_.end(), id) == running_.end()) {
      emit(id);
    }
  }
  out.running_tail = 0;
  for (int id : running_) {
    if (apps_.count(id) != 0) {
      emit(id);
      ++out.running_tail;
    }
  }
}

int CpuManager::restore(const ManagerSnapshot& snap) {
  assert(apps_.empty() && "restore() primes a fresh manager");
  quantum_index_ = snap.quantum_index;
  dead_feed_quanta_ = snap.dead_feed_quanta;
  degraded_ = snap.degraded;
  if (m_degradation_state_ != nullptr) {
    m_degradation_state_->set(degraded_ ? 1.0 : 0.0);
  }
  pending_restore_.clear();
  restore_pos_.clear();
  const std::size_t gang_start =
      snap.feeds.size() -
      std::min<std::size_t>(snap.feeds.size(),
                            static_cast<std::size_t>(
                                std::max(snap.running_tail, 0)));
  int parked = 0;
  for (std::size_t i = 0; i < snap.feeds.size(); ++i) {
    // Adoption is keyed by application name; with duplicate names only the
    // last journaled feed survives (reattach cannot tell twins apart).
    pending_restore_[snap.feeds[i].name] = {snap.feeds[i],
                                            static_cast<int>(i),
                                            i >= gang_start};
    ++parked;
  }
  return parked;
}

void CpuManager::set_metrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    m_missed_quanta_ = nullptr;
    m_invalid_samples_ = nullptr;
    m_negative_deltas_ = nullptr;
    m_clamped_samples_ = nullptr;
    m_quarantines_ = nullptr;
    m_degraded_elections_ = nullptr;
    m_degradation_state_ = nullptr;
    m_qos_replenishes_ = nullptr;
    m_qos_violations_ = nullptr;
    m_qos_rejected_ = nullptr;
    m_qos_slack_elections_ = nullptr;
    m_qos_reserved_apps_ = nullptr;
    return;
  }
  m_missed_quanta_ = &metrics_->counter("manager.faults.missed_quanta");
  m_invalid_samples_ = &metrics_->counter("manager.faults.invalid_samples");
  m_negative_deltas_ = &metrics_->counter("manager.faults.negative_deltas");
  m_clamped_samples_ = &metrics_->counter("manager.faults.clamped_samples");
  m_quarantines_ = &metrics_->counter("manager.faults.quarantines");
  m_degraded_elections_ = &metrics_->counter("manager.degraded_elections");
  m_degradation_state_ = &metrics_->gauge("manager.degradation_state");
  m_degradation_state_->set(degraded_ ? 1.0 : 0.0);
  m_qos_replenishes_ = &metrics_->counter("manager.qos.replenishes");
  m_qos_violations_ =
      &metrics_->counter("manager.qos.reservation_violations");
  m_qos_rejected_ = &metrics_->counter("manager.qos.reservations_rejected");
  m_qos_slack_elections_ = &metrics_->counter("manager.qos.slack_elections");
  m_qos_reserved_apps_ = &metrics_->gauge("manager.qos.reserved_apps");
  m_qos_reserved_apps_->set(static_cast<double>(credit_.reserved_count()));
}

QosError CpuManager::set_reservation(int app_id, double frac,
                                     std::uint64_t now_us) {
  QosError err = QosError::kNone;
  if (!connected(app_id)) {
    err = QosError::kUnknownApp;
  } else {
    err = credit_.reserve(app_id, frac);
  }
  if (err != QosError::kNone) {
    if (m_qos_rejected_ != nullptr) m_qos_rejected_->inc();
    count_fault(obs::FaultKind::kReservationRejected, app_id, frac, now_us);
    return err;
  }
  if (m_qos_reserved_apps_ != nullptr) {
    m_qos_reserved_apps_->set(static_cast<double>(credit_.reserved_count()));
  }
  return err;
}

void CpuManager::count_fault(obs::FaultKind kind, int app_id, double value,
                             std::uint64_t now_us) {
  switch (kind) {
    case obs::FaultKind::kMissedQuantum:
      if (m_missed_quanta_ != nullptr) m_missed_quanta_->inc();
      break;
    case obs::FaultKind::kInvalidSample:
      if (m_invalid_samples_ != nullptr) m_invalid_samples_->inc();
      break;
    case obs::FaultKind::kNegativeDelta:
      if (m_negative_deltas_ != nullptr) m_negative_deltas_->inc();
      break;
    case obs::FaultKind::kClampedSample:
      if (m_clamped_samples_ != nullptr) m_clamped_samples_->inc();
      break;
    default:
      break;
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    // Non-finite magnitudes would poison the JSON exporters.
    tracer_->fault(now_us,
                   {app_id, kind, std::isfinite(value) ? value : 0.0});
  }
}

void CpuManager::record_sample(int app_id, double delta_transactions,
                               std::uint64_t now_us) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) return;  // app disconnected between sample and post
  ManagedApp& app = it->second;

  // Counter backends lie: validate before trusting (docs/ROBUSTNESS.md).
  if (!std::isfinite(delta_transactions)) {
    // A NaN/inf reading is a failed read, not a measurement — drop it
    // without bumping samples_this_quantum so it counts toward staleness.
    count_fault(obs::FaultKind::kInvalidSample, app_id, delta_transactions,
                now_us);
    return;
  }
  if (delta_transactions < 0.0) {
    // Counter wraparound shows up as a negative delta; the transactions of
    // the wrapped interval are unrecoverable, so clamp to "no traffic seen".
    count_fault(obs::FaultKind::kNegativeDelta, app_id, delta_transactions,
                now_us);
    delta_transactions = 0.0;
  }
  const double cap = cfg_.staleness.max_sample_factor * cfg_.total_bus_bw_tps *
                     static_cast<double>(cfg_.quantum_us);
  if (cap > 0.0 && delta_transactions > cap) {
    // No real bus could have carried this; a glitched or post-wrap read.
    count_fault(obs::FaultKind::kClampedSample, app_id, delta_transactions,
                now_us);
    delta_transactions = cap;
  }
  app.tracker.record_sample(delta_transactions);
  ++app.samples_this_quantum;
  // The validated delta also debits the app's credit: the same measurement
  // drives the fitness estimate and utilization_over_bandwidth.
  if (cfg_.qos.enabled) credit_.debit(app_id, delta_transactions);
}

void CpuManager::quarantine(int app_id, std::uint64_t now_us) {
  auto it = apps_.find(app_id);
  if (it == apps_.end()) return;
  ManagedApp& app = it->second;
  if (app.quarantined) return;
  const obs::DegradationState before = app.feed_state();
  app.quarantined = true;
  app.decayed_estimate = std::nan("");
  // Jump the miss streak to the ladder's quarantine rung so a subsequent
  // silent quantum keeps the feed where we put it instead of re-walking
  // hold → decay from scratch.
  app.miss_streak = std::max(app.miss_streak, cfg_.staleness.quarantine_after);
  if (m_quarantines_ != nullptr) m_quarantines_->inc();
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->degradation_change(
        now_us, {app_id, before, obs::DegradationState::kQuarantined});
  }
}

double CpuManager::policy_estimate(int app_id) const {
  const ManagedApp& app = apps_.at(app_id);
  // Degradation overrides, strongest first (docs/ROBUSTNESS.md ladder).
  if (app.quarantined) return cfg_.initial_estimate_tps;
  if (!std::isnan(app.decayed_estimate)) return app.decayed_estimate;
  if (!app.tracker.observed()) return cfg_.initial_estimate_tps;
  switch (cfg_.policy) {
    case PolicyKind::kLatestQuantum:
      return app.tracker.latest_per_thread();
    case PolicyKind::kQuantaWindow:
      return app.tracker.window_per_thread();
    case PolicyKind::kExponential:
      return app.tracker.ewma_per_thread();
  }
  return 0.0;
}

// bbsched:hot runs inside schedule_quantum on every quantum boundary
void CpuManager::apply_staleness_policy(std::uint64_t now_us) {
  const double quantum = static_cast<double>(cfg_.quantum_us);
  const StalenessConfig& st = cfg_.staleness;
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  int live_feeds = 0;

  // Zero samples only means a dead feed when a whole quantum actually
  // elapsed: a mid-quantum re-election (job disconnect) may legitimately
  // arrive before the first sampling point, and must fold exactly like the
  // pre-hardening manager did (bit-identical fault-free behaviour).
  const bool full_quantum = now_us >= last_election_us_ + cfg_.quantum_us;

  for (int id : running_) {
    auto it = apps_.find(id);
    if (it == apps_.end()) continue;  // disconnected mid-quantum
    ManagedApp& app = it->second;
    const obs::DegradationState before = app.feed_state();

    if (app.samples_this_quantum > 0) {
      // Live feed: fold the quantum and walk straight back to kLive — a
      // single fresh measurement outranks any amount of stale history.
      app.tracker.end_quantum(quantum);
      app.miss_streak = 0;
      app.decayed_estimate = std::nan("");
      app.quarantined = false;
      ++live_feeds;
    } else if (!full_quantum) {
      // Mid-quantum election before any sampling point: fold as the
      // pre-hardening manager did, without touching the ladder — absence of
      // samples here says nothing about the feed's health.
      app.tracker.end_quantum(quantum);
    } else {
      // The app ran the whole quantum yet posted nothing: its feed is
      // silent. Do NOT fold (end_quantum would record a zero-bandwidth
      // quantum and poison the window); hold, then decay, then quarantine.
      ++app.miss_streak;
      count_fault(obs::FaultKind::kMissedQuantum, id,
                  static_cast<double>(app.miss_streak), now_us);
      if (app.miss_streak >= st.quarantine_after) {
        if (!app.quarantined) {
          app.quarantined = true;
          app.decayed_estimate = std::nan("");
          if (m_quarantines_ != nullptr) m_quarantines_->inc();
        }
      } else if (app.miss_streak > st.hold_quanta) {
        const double current = std::isnan(app.decayed_estimate)
                                   ? policy_estimate(id)
                                   : app.decayed_estimate;
        app.decayed_estimate =
            cfg_.initial_estimate_tps +
            (current - cfg_.initial_estimate_tps) * st.decay_factor;
      }
    }

    const obs::DegradationState after = app.feed_state();
    if (after != before && tracing) {
      tracer_->degradation_change(now_us, {id, before, after});
    }
  }

  // Manager-wide liveness: full quanta in which something ran but *no*
  // feed delivered. An idle manager (nothing elected) is not a dead one,
  // and mid-quantum elections say nothing either way.
  if (full_quantum) {
    if (!running_.empty() && live_feeds == 0) {
      ++dead_feed_quanta_;
    } else {
      dead_feed_quanta_ = 0;
    }
  }
  const bool degraded_now =
      st.dead_feed_quanta > 0 && dead_feed_quanta_ >= st.dead_feed_quanta;
  if (degraded_now != degraded_) {
    if (tracing) {
      tracer_->degradation_change(
          now_us, {-1,
                   degraded_ ? obs::DegradationState::kRoundRobin
                             : obs::DegradationState::kLive,
                   degraded_now ? obs::DegradationState::kRoundRobin
                                : obs::DegradationState::kLive});
    }
    degraded_ = degraded_now;
    if (m_degradation_state_ != nullptr) {
      m_degradation_state_->set(degraded_ ? 1.0 : 0.0);
    }
  }

  for (int id : order_) apps_.at(id).samples_this_quantum = 0;
}

// bbsched:hot per-quantum election path, runs once per scheduling quantum
const ElectionResult& CpuManager::schedule_quantum(int nprocs,
                                                   std::uint64_t now_us) {
  // (1) Update statistics of the jobs that ran during the ending quantum,
  // advancing the staleness ladder of any feed that went silent.
  apply_staleness_policy(now_us);

  // (2) Move previously running jobs to the end of the list, preserving
  // their relative order (splice: no node churn on the steady-state path).
  for (int id : running_) {
    auto pos = std::find(order_.begin(), order_.end(), id);
    if (pos != order_.end()) {
      order_.splice(order_.end(), order_, pos);
    }
  }

  // (3) Elect the next gang.
  candidates_.clear();
  candidates_.reserve(order_.size());
  for (int id : order_) {
    const ManagedApp& app = apps_.at(id);
    candidates_.push_back({id, app.nthreads, policy_estimate(id)});
  }
  const std::vector<Candidate>& candidates = candidates_;
  const bool tracing = tracer_ != nullptr && tracer_->enabled();
  // In degraded mode every estimate is fiction, so the election falls back
  // to plain round-robin gang scheduling: head-of-list first-fit, which the
  // post-election rotation turns into a fair rotor (docs/ROBUSTNESS.md).
  // The credit tier (when enabled and feeds are healthy) takes precedence
  // over the predictive election: guarantees outrank optimization. In
  // degraded mode neither runs — with every feed dead there are no debits,
  // so "credit remaining" is as fictional as any estimate; reservations
  // pause and the round-robin fallback takes over until feeds revive.
  const bool use_credit = cfg_.qos.enabled && !degraded_;
  const bool predictive = cfg_.use_predictive && !degraded_ && !use_credit;
  const ElectionRule rule =
      degraded_ ? ElectionRule::kFirstFit : cfg_.election_rule;
  if (use_credit) {
    const CreditScheduler::ReplenishReport rep =
        credit_.replenish_if_due(now_us, tracer_);
    if (rep.replenished > 0 && m_qos_replenishes_ != nullptr) {
      m_qos_replenishes_->inc(static_cast<double>(rep.replenished));
    }
    if (rep.violations > 0 && m_qos_violations_ != nullptr) {
      m_qos_violations_->inc(static_cast<double>(rep.violations));
    }
  }
  if (predictive) {
    elect_predictive_into(candidates, nprocs, cfg_.predictor,
                          cfg_.predictive_objective, result_);
  } else if (use_credit) {
    credit_.elect(candidates, nprocs, cfg_.total_bus_bw_tps, rule,
                  tracing ? &audit_ : nullptr, result_);
    if (credit_.last_slack_elected() > 0 &&
        m_qos_slack_elections_ != nullptr) {
      m_qos_slack_elections_->inc(
          static_cast<double>(credit_.last_slack_elected()));
    }
  } else {
    elect_into(candidates, nprocs, cfg_.total_bus_bw_tps, rule,
               tracing ? &audit_ : nullptr, result_);
  }
  const ElectionResult& result = result_;
  if (degraded_ && m_degraded_elections_ != nullptr) {
    m_degraded_elections_->inc();
  }

  if (tracing) {
    tracer_->quantum_start(
        now_us, {quantum_index_, nprocs, static_cast<std::int32_t>(
                                             candidates.size())});
    if (predictive) {
      // The predictive election has no per-round fitness scores; audit the
      // outcome only so the trace still explains who ran.
      audit_.resize(candidates.size());
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        audit_[i] = CandidateDecision{};
        audit_[i].app_id = candidates[i].app_id;
        audit_[i].nthreads = candidates[i].nthreads;
        audit_[i].bbw_per_thread = candidates[i].bbw_per_thread;
        const auto pos = std::find(result.elected.begin(),
                                   result.elected.end(),
                                   candidates[i].app_id);
        if (pos != result.elected.end()) {
          audit_[i].elected = true;
          audit_[i].alloc_order =
              static_cast<int>(pos - result.elected.begin());
        }
      }
    }
    for (const CandidateDecision& d : audit_) {
      obs::ElectionDecisionPayload p;
      p.quantum = quantum_index_;
      p.app_id = d.app_id;
      p.nthreads = d.nthreads;
      p.bbw_per_thread = d.bbw_per_thread;
      p.abbw_per_proc = d.abbw_per_proc;
      p.score = d.score;
      p.alloc_order = static_cast<std::int16_t>(d.alloc_order);
      p.elected = d.elected ? 1 : 0;
      p.head_default = d.head_default ? 1 : 0;
      tracer_->election_decision(now_us, p);
    }
  }
  ++quantum_index_;
  last_election_us_ = now_us;

  running_ = result.elected;
  for (int id : order_) {
    apps_.at(id).ran_last_quantum =
        std::find(running_.begin(), running_.end(), id) != running_.end();
  }
  return result;
}

}  // namespace bbsched::core
