// Simulator adapter for the CPU manager: drives core::CpuManager from engine
// ticks the way the real user-level manager is driven by timers and the
// shared arena.
//
// Responsibilities per the paper's §4:
//  * connect every admitted job to the manager (apps "connect" on startup),
//  * poll the (simulated) performance counters of running applications twice
//    per quantum and post the accumulated transactions,
//  * at every quantum boundary run the election, block the de-scheduled
//    applications and unblock the elected ones (block/unblock intents map
//    to SIGUSR1/SIGUSR2 in the native runtime),
//  * place elected threads with affinity (a thread returns to the CPU it
//    last used whenever it is free),
//  * charge the manager's own overhead by keeping processors idle for a
//    configurable interval at each quantum boundary (signal delivery + list
//    traversal + arena polling in the real system).
#pragma once

#include <unordered_map>
#include <vector>

#include "core/cpu_manager.h"
#include "faults/fault_injector.h"
#include "sim/scheduler.h"

namespace bbsched::core {

struct ManagedSchedulerConfig {
  ManagerConfig manager{};

  /// Fixed manager cost per quantum boundary (µs of idle machine time).
  sim::SimTime overhead_base_us = 0;
  /// Additional cost per connected application (list traversal, signals,
  /// counter polling).
  sim::SimTime overhead_per_app_us = 0;

  /// Re-run the election immediately when a job completes mid-quantum
  /// (the real manager reacts to the 'disconnect' message).
  bool reelect_on_disconnect = true;

  /// Sample demand-side counters (attempted transactions, the quantity the
  /// Xeon bus-event counters report) rather than the data actually moved.
  /// See sim::ThreadCtx::bus_attempts.
  bool sample_attempts = true;

  /// Seeded fault schedule applied to the manager's counter reads (one draw
  /// per read, simulating the faults::FaultyCounterSource classes at the
  /// sampling site). Disabled by default; disabled injection performs no
  /// draw, so fault-free runs are bit-identical to a build without the hook.
  faults::FaultConfig counter_faults{};
};

class ManagedScheduler final : public sim::Scheduler {
 public:
  explicit ManagedScheduler(const ManagedSchedulerConfig& cfg)
      : cfg_(cfg), manager_(cfg.manager), injector_(cfg.counter_faults) {}

  void start(sim::Machine& m, trace::ScheduleTrace& trace) override;
  void tick(sim::Machine& m, sim::SimTime now,
            trace::ScheduleTrace& trace) override;

  /// Quantum batching support (sim::Scheduler contract): between sampling
  /// points, election boundaries and the end of the overhead window, tick()
  /// provably mutates nothing as long as no job connects/disconnects, no
  /// block-state flip is pending and no elected thread awaits placement.
  [[nodiscard]] sim::SimTime quiescent_until(const sim::Machine& m,
                                             sim::SimTime now) const override;

  [[nodiscard]] const char* name() const override {
    if (cfg_.manager.qos.enabled) return "manager/credit";
    switch (cfg_.manager.policy) {
      case PolicyKind::kLatestQuantum: return "manager/latest-quantum";
      case PolicyKind::kQuantaWindow: return "manager/quanta-window";
      case PolicyKind::kExponential: return "manager/ewma";
    }
    return "manager";
  }

  [[nodiscard]] CpuManager& manager() noexcept { return manager_; }
  [[nodiscard]] const CpuManager& manager() const noexcept { return manager_; }

  /// Attaches a structured event tracer (non-owning): elections are
  /// recorded by the embedded CpuManager; counter samples and manager
  /// block/unblock transitions are recorded here, where simulated time and
  /// job ids are at hand.
  void set_tracer(obs::Tracer* tracer) noexcept {
    tracer_ = tracer;
    manager_.set_tracer(tracer);
  }

  /// Attaches a metrics registry (forwarded to the embedded CpuManager,
  /// which owns the fault counters and the degradation gauge).
  void set_metrics(obs::MetricsRegistry* metrics) { manager_.set_metrics(metrics); }

  /// The counter-read fault injector (for tests asserting fault schedules).
  [[nodiscard]] const faults::FaultInjector& injector() const noexcept {
    return injector_;
  }

  /// Completed gang context switches (elections applied); for tests and the
  /// quantum-length ablation.
  [[nodiscard]] std::uint64_t elections() const noexcept { return elections_; }

 private:
  int connect_app(const sim::Job& job, sim::SimTime now);
  [[nodiscard]] double read_counters(const sim::Machine& m, int job_id) const;
  void take_sample(sim::Machine& m, sim::SimTime now,
                   trace::ScheduleTrace& trace);
  void run_election(sim::Machine& m, sim::SimTime now,
                    trace::ScheduleTrace& trace);
  void apply_block_states(sim::Machine& m, trace::ScheduleTrace& trace,
                          sim::SimTime now);
  void place_elected(sim::Machine& m);
  void handle_completions(sim::Machine& m, sim::SimTime now,
                          trace::ScheduleTrace& trace);

  [[nodiscard]] sim::SimTime overhead_us() const {
    return cfg_.overhead_base_us +
           cfg_.overhead_per_app_us * manager_.app_count();
  }

  ManagedSchedulerConfig cfg_;
  CpuManager manager_;
  faults::FaultInjector injector_;  ///< counter-read fault schedule
  obs::Tracer* tracer_ = nullptr;   ///< non-owning

  /// job id -> manager app id (identity in practice, but kept explicit).
  std::unordered_map<int, int> job_to_app_;
  std::unordered_map<int, int> app_to_job_;
  /// Last cumulative transaction count read per manager app.
  std::unordered_map<int, double> last_read_;

  sim::SimTime quantum_start_ = 0;
  int samples_taken_ = 0;
  sim::SimTime busy_until_ = 0;  ///< manager overhead window
  std::uint64_t elections_ = 0;
};

}  // namespace bbsched::core
