// Per-application bus-bandwidth bookkeeping for the CPU manager.
//
// Applications post cumulative bus-transaction counts to the manager twice
// per scheduling quantum (paper §4: "the bus transaction rate is updated
// twice per scheduling quantum ... the performance counters of all
// application threads are polled, their values are accumulated and the
// result is written to the shared arena"). At the end of each quantum the
// manager folds the quantum's transactions into a per-thread rate:
//
//     BBW/thread = (transactions in quantum) / quantum / nthreads
//
// 'Latest Quantum' consumes the most recent quantum's value; 'Quanta Window'
// consumes the arithmetic mean of a window of previous values (default 5
// samples, the paper's choice).
#pragma once

#include <cstddef>
#include <vector>

#include "stats/moving_window.h"

namespace bbsched::core {

/// Serializable image of one BandwidthTracker: everything the policy
/// estimates depend on. Pending intra-quantum transactions are deliberately
/// excluded — snapshots are taken at quantum boundaries, where pending has
/// just been folded (core/journal.h).
struct TrackerSnapshot {
  double latest = 0.0;
  bool has_latest = false;
  std::vector<double> window;  ///< folded per-thread rates, oldest first
  double ewma = 0.0;
  bool ewma_seeded = false;
};

class BandwidthTracker {
 public:
  explicit BandwidthTracker(int nthreads, std::size_t window_len = 5,
                            double ewma_alpha = 0.33)
      : nthreads_(nthreads), window_(window_len), ewma_(ewma_alpha) {}

  /// Accumulates one intra-quantum sample: `delta_transactions` issued by
  /// all of the application's threads over the last sampling interval.
  void record_sample(double delta_transactions) {
    pending_transactions_ += delta_transactions;
  }

  /// Folds the pending transactions into a per-thread rate for a quantum of
  /// `quantum_us` microseconds. Call only for applications that ran during
  /// the quantum (the paper updates "all running jobs").
  void end_quantum(double quantum_us) {
    const double rate =
        pending_transactions_ / quantum_us / static_cast<double>(nthreads_);
    pending_transactions_ = 0.0;
    latest_ = rate;
    has_latest_ = true;
    window_.push(rate);
    ewma_.push(rate);
  }

  /// BBW/thread from the latest quantum (Eq. 1). Applications that have
  /// never run report 0 — they are assumed bandwidth-free until observed,
  /// which also makes them attractive co-runners on a loaded bus, giving
  /// every new job a quick first run (no starvation of newcomers).
  [[nodiscard]] double latest_per_thread() const noexcept {
    return has_latest_ ? latest_ : 0.0;
  }

  /// Mean BBW/thread over the window of previous quanta (Eq. 2).
  [[nodiscard]] double window_per_thread() const noexcept {
    return window_.mean();
  }

  /// Exponentially weighted BBW/thread (§4's wider-window technique).
  [[nodiscard]] double ewma_per_thread() const noexcept {
    return ewma_.mean();
  }

  [[nodiscard]] int nthreads() const noexcept { return nthreads_; }
  [[nodiscard]] bool observed() const noexcept { return has_latest_; }
  [[nodiscard]] std::size_t window_fill() const noexcept {
    return window_.size();
  }
  [[nodiscard]] double pending() const noexcept {
    return pending_transactions_;
  }

  /// Captures the policy-relevant state for journaling (crash recovery).
  void snapshot(TrackerSnapshot& out) const {
    out.latest = latest_;
    out.has_latest = has_latest_;
    window_.copy_samples(out.window);
    out.ewma = ewma_.mean();
    out.ewma_seeded = !ewma_.empty();
  }

  /// Rebuilds the tracker from a snapshot. Replaying the window samples
  /// oldest-first and seeding the EWMA with its folded value reproduces the
  /// exact estimates the snapshotted tracker would have reported.
  void restore(const TrackerSnapshot& snap) {
    pending_transactions_ = 0.0;
    latest_ = snap.latest;
    has_latest_ = snap.has_latest;
    window_.reset();
    for (double rate : snap.window) window_.push(rate);
    ewma_.reset();
    if (snap.ewma_seeded) ewma_.push(snap.ewma);
  }

 private:
  int nthreads_;
  double pending_transactions_ = 0.0;
  double latest_ = 0.0;
  bool has_latest_ = false;
  stats::MovingWindow window_;
  stats::ExponentialAverage ewma_;
};

}  // namespace bbsched::core
