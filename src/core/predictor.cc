#include "core/predictor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bbsched::core {

const char* to_string(PredictiveObjective objective) {
  switch (objective) {
    case PredictiveObjective::kMaxThroughput: return "max-throughput";
    case PredictiveObjective::kMinSlowdown: return "min-slowdown";
  }
  return "unknown";
}

double ContentionPredictor::alpha(double demand_tps) const {
  if (demand_tps <= 0.0) return 0.0;
  const double ratio = std::min(1.0, demand_tps / cfg_.per_thread_peak_tps);
  return std::pow(ratio, cfg_.alpha_exponent);
}

ContentionPredictor::Prediction ContentionPredictor::predict(
    std::span<const double> demands) const {
  Prediction out;
  const std::size_t n = demands.size();
  out.slowdown.assign(n, 1.0);
  if (n == 0) return out;

  double total_demand = 0.0;
  // Reused scratch: predictions run inside the election inner loop, which
  // must not touch the heap once capacities stabilize (election.cc idiom).
  static thread_local std::vector<double> alphas;
  alphas.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    total_demand += demands[i];
    alphas[i] = alpha(demands[i]);
  }

  // Same fixed point as the calibrated substrate model, but parameterised
  // only by offline-measurable constants: solve X so granted load fits C.
  auto granted_sum = [&](double x) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += demands[i] / (1.0 + alphas[i] * (x - 1.0));
    }
    return sum;
  };

  double x = 1.0;
  if (total_demand > cfg_.capacity_tps) {
    double lo = 1.0;
    double hi = 64.0;
    if (granted_sum(hi) <= cfg_.capacity_tps) {
      for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (granted_sum(mid) > cfg_.capacity_tps) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      x = 0.5 * (lo + hi);
    } else {
      x = hi;
    }
  }

  out.worst_speed = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.slowdown[i] = 1.0 + alphas[i] * (x - 1.0);
    const double speed = 1.0 / out.slowdown[i];
    out.aggregate_speed += speed;
    out.worst_speed = std::min(out.worst_speed, speed);
    out.total_rate += demands[i] / out.slowdown[i];
  }
  return out;
}

namespace {

/// Objective value of a gang given its per-thread demand vector.
double score(const ContentionPredictor& predictor,
             const std::vector<double>& demands,
             PredictiveObjective objective) {
  if (demands.empty()) return 0.0;
  const auto p = predictor.predict(demands);
  switch (objective) {
    case PredictiveObjective::kMaxThroughput:
      return p.aggregate_speed;
    case PredictiveObjective::kMinSlowdown:
      // Lexicographic-ish: strongly prefer a better worst case, break ties
      // toward more aggregate progress.
      return p.worst_speed * 1000.0 + p.aggregate_speed;
  }
  return 0.0;
}

}  // namespace

void elect_predictive_into(const std::vector<Candidate>& candidates,
                           int nprocs, const PredictorConfig& cfg,
                           PredictiveObjective objective,
                           ElectionResult& out) {
  assert(nprocs >= 0);
  const ContentionPredictor predictor(cfg);

  out.elected.clear();
  out.idle_procs = nprocs;
  out.allocated_bw = 0.0;

  // Reused scratch: per-quantum elections must not touch the heap once
  // the buffers reached the candidate-list length (election.cc idiom).
  static thread_local std::vector<char> taken;
  static thread_local std::vector<double> demands;
  static thread_local std::vector<double> trial;
  taken.assign(candidates.size(), 0);
  demands.clear();

  auto allocate = [&](std::size_t idx) {
    const Candidate& c = candidates[idx];
    taken[idx] = 1;
    // Capacity stabilizes after the first quantum:
    // bbsched:allow(hotpath): out.elected is the caller's reused result buffer
    out.elected.push_back(c.app_id);
    out.idle_procs -= c.nthreads;
    out.allocated_bw += c.bbw_per_thread * static_cast<double>(c.nthreads);
    for (int t = 0; t < c.nthreads; ++t) {
      // bbsched:allow(hotpath): demands is reused thread-local scratch
      demands.push_back(c.bbw_per_thread);
    }
  };

  // Head-of-list default allocation (starvation freedom, as in Eq. 1).
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].nthreads <= out.idle_procs) {
      allocate(i);
      break;
    }
  }

  // Greedy fill: add the candidate that best improves the objective; stop
  // when no addition improves it (idle processors are a legitimate choice).
  while (out.idle_procs > 0) {
    const double current = score(predictor, demands, objective);
    double best_score = current;
    std::size_t best_idx = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i] != 0 || candidates[i].nthreads > out.idle_procs) continue;
      trial.assign(demands.begin(), demands.end());
      for (int t = 0; t < candidates[i].nthreads; ++t) {
        // bbsched:allow(hotpath): trial is reused thread-local scratch
        trial.push_back(candidates[i].bbw_per_thread);
      }
      const double s = score(predictor, trial, objective);
      if (s > best_score + 1e-12) {
        best_score = s;
        best_idx = i;
      }
    }
    if (best_idx == candidates.size()) break;  // nothing improves: stop
    allocate(best_idx);
  }
}

ElectionResult elect_predictive(const std::vector<Candidate>& candidates,
                                int nprocs, const PredictorConfig& cfg,
                                PredictiveObjective objective) {
  ElectionResult out;
  elect_predictive_into(candidates, nprocs, cfg, objective, out);
  return out;
}

}  // namespace bbsched::core
