// Gang election: the processor-allocation algorithm of §4.
//
// Both policies are "gang-like": an application gets processors only if all
// of its threads fit. Election per quantum proceeds as:
//
//  1. The application at the top of the applications list is allocated by
//     default — this guarantees every application eventually runs,
//     independent of its bandwidth characteristics (no starvation).
//  2. While unallocated processors remain, traverse the whole list; for
//     every application that fits, compute fitness(ABBW/proc, BBW/thread);
//     allocate the fittest and repeat. ABBW/proc is recomputed after every
//     allocation, so low-bandwidth picks make high-bandwidth candidates
//     fitter for the remaining processors and vice versa.
//
// The election is a pure function of (candidate list, processor count, bus
// bandwidth); policies differ only in which BBW/thread estimate they plug in.
#pragma once

#include <vector>

#include "core/fitness.h"

namespace bbsched::core {

/// One schedulable application as the election sees it.
struct Candidate {
  int app_id = -1;
  int nthreads = 1;
  /// Policy-provided estimate of the app's bus bandwidth per thread
  /// (transactions/µs): latest quantum or window average.
  double bbw_per_thread = 0.0;
};

struct ElectionResult {
  /// Elected app ids, in allocation order (head of list first).
  std::vector<int> elected;
  /// Processors left idle (gang fragmentation).
  int idle_procs = 0;
  /// Sum of elected applications' bandwidth requirements (trans/µs).
  double allocated_bw = 0.0;
};

/// Per-candidate audit record of one election (observability). One entry
/// per candidate, in candidate-list order, elected or not — this is what
/// makes a "why did the election pass over job X?" question answerable
/// from a trace.
struct CandidateDecision {
  int app_id = -1;
  int nthreads = 1;
  double bbw_per_thread = 0.0;
  /// ABBW/proc at the moment the candidate was last scored (for the winner
  /// of a round: the round it won). Meaningless for head_default entries.
  double abbw_per_proc = 0.0;
  /// Score under the active rule at that moment. The head-of-list default
  /// allocation is unconditional: its score stays 0 and head_default is set.
  double score = 0.0;
  bool elected = false;
  bool head_default = false;
  /// Position in the allocation order; -1 when not elected.
  int alloc_order = -1;
};

/// Selection rule used after the head-of-list default allocation. The paper
/// uses kFitness (Eq. 1/2); the others exist for the design ablation in
/// bench/ablation_fitness.
enum class ElectionRule {
  kFitness,       ///< Eq. 1: max fitness(ABBW/proc, BBW/thread)
  kFirstFit,      ///< plain gang scheduling: list order, ignore bandwidth
  kLowestFirst,   ///< always the lowest-bandwidth candidate
  kHighestFirst,  ///< always the highest-bandwidth candidate
};

[[nodiscard]] const char* to_string(ElectionRule rule);

/// Runs the election over `candidates` (in applications-list order) for
/// `nprocs` processors and a bus of `total_bus_bw` transactions/µs.
///
/// When `audit` is non-null it is resized to candidates.size() and filled
/// with one CandidateDecision per candidate (same order). The vector is
/// reused across calls by the CPU manager, so filling it allocates only
/// until its capacity reaches the list length.
[[nodiscard]] ElectionResult elect(const std::vector<Candidate>& candidates,
                                   int nprocs, double total_bus_bw,
                                   ElectionRule rule = ElectionRule::kFitness,
                                   std::vector<CandidateDecision>* audit =
                                       nullptr);

/// Allocation-free variant: fills `out` in place (its vectors keep their
/// capacity across elections). The CPU manager's per-quantum path uses this
/// so the steady-state managed tick path stays heap-free (bench/perf_ticks).
void elect_into(const std::vector<Candidate>& candidates, int nprocs,
                double total_bus_bw, ElectionRule rule,
                std::vector<CandidateDecision>* audit, ElectionResult& out);

}  // namespace bbsched::core
