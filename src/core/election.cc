#include "core/election.h"

#include <cassert>

namespace bbsched::core {

const char* to_string(ElectionRule rule) {
  switch (rule) {
    case ElectionRule::kFitness: return "fitness";
    case ElectionRule::kFirstFit: return "first-fit";
    case ElectionRule::kLowestFirst: return "lowest-first";
    case ElectionRule::kHighestFirst: return "highest-first";
  }
  return "unknown";
}

ElectionResult elect(const std::vector<Candidate>& candidates, int nprocs,
                     double total_bus_bw, ElectionRule rule,
                     std::vector<CandidateDecision>* audit) {
  ElectionResult out;
  elect_into(candidates, nprocs, total_bus_bw, rule, audit, out);
  return out;
}

// bbsched:hot the election inner loop, zero-alloc in steady state
void elect_into(const std::vector<Candidate>& candidates, int nprocs,
                double total_bus_bw, ElectionRule rule,
                std::vector<CandidateDecision>* audit, ElectionResult& out) {
  assert(nprocs >= 0);
  out.elected.clear();
  out.allocated_bw = 0.0;
  out.idle_procs = nprocs;

  if (audit) {
    // Only grows on the first tracing quantum after an app-set change:
    // bbsched:allow(hotpath): audit is the caller's reused, size-stable buffer
    audit->resize(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      (*audit)[i] = CandidateDecision{};
      (*audit)[i].app_id = candidates[i].app_id;
      (*audit)[i].nthreads = candidates[i].nthreads;
      (*audit)[i].bbw_per_thread = candidates[i].bbw_per_thread;
    }
  }

  // Reused scratch: per-quantum elections must not touch the heap once the
  // buffer reached the list length (the perf_ticks zero-alloc gate).
  static thread_local std::vector<char> taken;
  taken.assign(candidates.size(), 0);

  auto allocate = [&](std::size_t idx) {
    const Candidate& c = candidates[idx];
    taken[idx] = true;
    if (audit) {
      (*audit)[idx].elected = true;
      (*audit)[idx].alloc_order = static_cast<int>(out.elected.size());
    }
    // Capacity stabilizes after the first quantum:
    // bbsched:allow(hotpath): out.elected is the caller's reused result buffer
    out.elected.push_back(c.app_id);
    out.idle_procs -= c.nthreads;
    out.allocated_bw += c.bbw_per_thread * static_cast<double>(c.nthreads);
  };

  // Step 1: head-of-list default allocation (starvation freedom). The head
  // is the first application that fits at all.
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].nthreads <= out.idle_procs) {
      if (audit) (*audit)[i].head_default = true;
      allocate(i);
      break;
    }
  }

  // Step 2: repeated full-list traversals, allocating the best candidate
  // under the active rule each time, until no candidate fits. Each round
  // refreshes the audit entries of every candidate it scores, so a
  // passed-over candidate's record holds its score from the last round in
  // which it competed.
  while (out.idle_procs > 0) {
    const double abbw =
        abbw_per_proc(total_bus_bw, out.allocated_bw, out.idle_procs);
    double best_score = -1.0;
    std::size_t best_idx = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i] || candidates[i].nthreads > out.idle_procs) continue;
      double score = 0.0;
      switch (rule) {
        case ElectionRule::kFitness:
          score = fitness(abbw, candidates[i].bbw_per_thread);
          break;
        case ElectionRule::kFirstFit:
          score = 1.0;  // strict '>' keeps the first fitting candidate
          break;
        case ElectionRule::kLowestFirst:
          score = 1.0 / (1.0 + candidates[i].bbw_per_thread);
          break;
        case ElectionRule::kHighestFirst:
          score = candidates[i].bbw_per_thread;
          break;
      }
      if (audit) {
        (*audit)[i].score = score;
        (*audit)[i].abbw_per_proc = abbw;
      }
      if (score > best_score) {
        best_score = score;
        best_idx = i;
      }
    }
    if (best_idx == candidates.size()) break;  // nothing fits
    allocate(best_idx);
  }
}

}  // namespace bbsched::core
