// The fitness metric of the paper's scheduling policies (§4, Eq. 1 and 2).
//
//               fitness = 1000 / (1 + |ABBW/proc - BBW/thread|)
//
// ABBW/proc is the available bus bandwidth per unallocated processor; an
// application whose per-thread bandwidth best matches it is the fittest.
// The metric deliberately behaves well at saturation: once allocated
// applications overcommit the bus, ABBW/proc turns negative and the
// application with the lowest per-thread bandwidth becomes the fittest.
// 'Latest Quantum' feeds it the latest-quantum rate (Eq. 1); 'Quanta Window'
// feeds it a moving-window average (Eq. 2); the formula is identical.
#pragma once

#include <cmath>

namespace bbsched::core {

/// Numerator of the fitness metric (the paper uses 1000; any positive
/// constant yields the same ordering — kept for fidelity to Eq. 1).
inline constexpr double kFitnessScale = 1000.0;

/// Eq. 1 / Eq. 2. Both arguments are bus-transaction rates (transactions/µs
/// in this codebase; any consistent bandwidth unit works).
///
/// @param abbw_per_proc   available bus bandwidth per unallocated processor
///                        (may be negative once the bus is overcommitted)
/// @param bbw_per_thread  the candidate's bandwidth consumption per thread
[[nodiscard]] inline double fitness(double abbw_per_proc,
                                    double bbw_per_thread) {
  return kFitnessScale / (1.0 + std::fabs(abbw_per_proc - bbw_per_thread));
}

/// Available bus bandwidth per unallocated processor: remaining bandwidth
/// after subtracting already-allocated applications' requirements,
/// equipartitioned over the processors still free. Defined only for
/// unallocated_procs >= 1.
[[nodiscard]] inline double abbw_per_proc(double total_bus_bw,
                                          double allocated_bw,
                                          int unallocated_procs) {
  return (total_bus_bw - allocated_bw) / static_cast<double>(unallocated_procs);
}

}  // namespace bbsched::core
