#include "core/credit_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bbsched::core {

const char* to_string(QosError err) {
  switch (err) {
    case QosError::kNone: return "none";
    case QosError::kUnknownApp: return "unknown-app";
    case QosError::kInvalidFraction: return "invalid-fraction";
    case QosError::kOversubscribed: return "oversubscribed";
  }
  return "unknown";
}

QosError CreditScheduler::reserve(int app_id, double frac) {
  if (frac == 0.0) {
    release(app_id);
    return QosError::kNone;
  }
  if (!std::isfinite(frac) || frac < 0.0 || frac > 1.0) {
    return QosError::kInvalidFraction;
  }
  const auto it = accounts_.find(app_id);
  const double prev = it == accounts_.end() ? 0.0 : it->second.reservation_frac;
  // Admission control: the guarantees must be satisfiable. Refuse (without
  // touching the ledger) any reservation that would push the admitted sum
  // past the whole bus.
  if (reserved_sum_ - prev + frac > 1.0 + 1e-9) {
    return QosError::kOversubscribed;
  }
  reserved_sum_ += frac - prev;
  CreditAccount& acct = accounts_[app_id];
  acct.reservation_frac = frac;
  // A fresh (or resized) reservation takes effect immediately: grant the
  // full-period credit now rather than making the app wait out the period
  // it joined in the middle of.
  const double grant =
      frac * total_bus_bw_tps_ * static_cast<double>(cfg_.period_us);
  acct.credit_tx = grant;
  acct.granted_tx = grant;
  acct.spent_tx = 0.0;
  acct.quanta_elected = 0;
  if (it == accounts_.end()) {
    reserved_order_.insert(
        std::lower_bound(reserved_order_.begin(), reserved_order_.end(),
                         app_id),
        app_id);
  }
  return QosError::kNone;
}

void CreditScheduler::release(int app_id) {
  const auto it = accounts_.find(app_id);
  if (it == accounts_.end()) return;
  reserved_sum_ -= it->second.reservation_frac;
  if (reserved_sum_ < 0.0) reserved_sum_ = 0.0;  // float dust
  accounts_.erase(it);
  reserved_order_.erase(std::remove(reserved_order_.begin(),
                                    reserved_order_.end(), app_id),
                        reserved_order_.end());
}

void CreditScheduler::debit(int app_id, double transactions) {
  const auto it = accounts_.find(app_id);
  if (it == accounts_.end()) return;
  it->second.credit_tx -= transactions;
  it->second.spent_tx += transactions;
}

CreditScheduler::ReplenishReport CreditScheduler::replenish_if_due(
    std::uint64_t now_us, obs::Tracer* tracer) {
  ReplenishReport report;
  if (started_ && now_us < period_start_us_ + cfg_.period_us) return report;

  const bool closing = started_;  // first call only opens period 0
  const std::uint64_t elapsed_us = now_us - period_start_us_;
  const bool tracing = tracer != nullptr && tracer->enabled();

  for (int id : reserved_order_) {
    CreditAccount& acct = accounts_.at(id);
    const double reserved_tps = acct.reservation_frac * total_bus_bw_tps_;
    if (closing) {
      const double delivered_tps =
          elapsed_us > 0 ? acct.spent_tx / static_cast<double>(elapsed_us)
                         : 0.0;
      // A shortfall is a *violation* only when the scheduler denied the app
      // the CPU for part of the period; an always-elected app that spent
      // less than its reservation simply demanded less than it reserved.
      const bool shortfall =
          delivered_tps < reserved_tps * (1.0 - cfg_.violation_tolerance);
      if (shortfall && acct.quanta_elected < quanta_in_period_) {
        ++report.violations;
        if (tracing) {
          obs::ReservationViolationPayload p;
          p.app_id = id;
          p.period = period_index_;
          p.reserved_tps = reserved_tps;
          p.delivered_tps = delivered_tps;
          p.quanta_elected = acct.quanta_elected;
          p.quanta_in_period = quanta_in_period_;
          tracer->reservation_violation(now_us, p);
        }
      }
    }
    const double grant =
        acct.reservation_frac * total_bus_bw_tps_ *
        static_cast<double>(cfg_.period_us);
    if (tracing) {
      obs::CreditReplenishPayload p;
      p.app_id = id;
      p.period = closing ? period_index_ + 1 : period_index_;
      p.granted_tx = grant;
      p.spent_tx = closing ? acct.spent_tx : 0.0;
      p.leftover_tx = closing ? std::max(acct.credit_tx, 0.0) : 0.0;
      tracer->credit_replenish(now_us, p);
    }
    acct.credit_tx = grant;
    acct.granted_tx = grant;
    acct.spent_tx = 0.0;
    acct.quanta_elected = 0;
    ++report.replenished;
  }

  if (closing) ++period_index_;
  started_ = true;
  period_start_us_ = now_us;
  quanta_in_period_ = 0;
  return report;
}

// bbsched:hot per-quantum election path of the credit tier
void CreditScheduler::elect(const std::vector<Candidate>& candidates,
                            int nprocs, double total_bus_bw,
                            ElectionRule slack_rule,
                            std::vector<CandidateDecision>* audit,
                            ElectionResult& out) {
  last_slack_elected_ = 0;
  if (accounts_.empty()) {
    // Zero reservations degenerate to the ordinary best-effort election by
    // construction — same code, not merely the same behaviour.
    elect_into(candidates, nprocs, total_bus_bw, slack_rule, audit, out);
  } else {
    assert(nprocs >= 0);
    out.elected.clear();
    out.allocated_bw = 0.0;
    out.idle_procs = nprocs;

    if (audit) {
      // bbsched:allow(hotpath): audit is the caller's reused buffer
      audit->resize(candidates.size());
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        (*audit)[i] = CandidateDecision{};
        (*audit)[i].app_id = candidates[i].app_id;
        (*audit)[i].nthreads = candidates[i].nthreads;
        (*audit)[i].bbw_per_thread = candidates[i].bbw_per_thread;
      }
    }
    // bbsched:allow(hotpath): taken_ is a reused, size-stable member buffer
    taken_.assign(candidates.size(), 0);

    auto allocate = [&](std::size_t idx) {
      const Candidate& c = candidates[idx];
      taken_[idx] = 1;
      if (audit) {
        (*audit)[idx].elected = true;
        (*audit)[idx].alloc_order = static_cast<int>(out.elected.size());
      }
      // bbsched:allow(hotpath): out.elected is the caller's reused buffer
      out.elected.push_back(c.app_id);
      out.idle_procs -= c.nthreads;
      out.allocated_bw += c.bbw_per_thread * static_cast<double>(c.nthreads);
    };

    // Phase 1 — the guarantee: every application holding credit is
    // allocated in applications-list order while its gang fits. Fitness
    // never passes over a paid-for reservation.
    bool guarding = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const auto it = accounts_.find(candidates[i].app_id);
      if (it == accounts_.end() || it->second.credit_tx <= 0.0) continue;
      if (candidates[i].nthreads > out.idle_procs) continue;
      if (audit) {
        // Surface the remaining-credit fraction as the "score" so a trace
        // explains phase-1 picks (head_default stays false: this is the
        // guarantee, not the starvation rule).
        (*audit)[i].score = it->second.granted_tx > 0.0
                                ? it->second.credit_tx / it->second.granted_tx
                                : 0.0;
      }
      allocate(i);
      guarding = true;
    }

    // Phase 2 — the slack: remaining processors go to the rest of the list
    // (best-effort apps, and reserved apps that spent their credit) under
    // the ordinary rule. Unused credit is work-conservingly redistributed;
    // but while guarantees are on the bus, admission refuses candidates
    // whose estimated demand would over-subscribe it.
    while (out.idle_procs > 0) {
      const double abbw =
          abbw_per_proc(total_bus_bw, out.allocated_bw, out.idle_procs);
      double best_score = -1.0;
      std::size_t best_idx = candidates.size();
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (taken_[i] != 0 || candidates[i].nthreads > out.idle_procs) {
          continue;
        }
        const double demand = candidates[i].bbw_per_thread *
                              static_cast<double>(candidates[i].nthreads);
        if (guarding && out.allocated_bw + demand > total_bus_bw) continue;
        double score = 0.0;
        switch (slack_rule) {
          case ElectionRule::kFitness:
            score = fitness(abbw, candidates[i].bbw_per_thread);
            break;
          case ElectionRule::kFirstFit:
            score = 1.0;  // strict '>' keeps the first fitting candidate
            break;
          case ElectionRule::kLowestFirst:
            score = 1.0 / (1.0 + candidates[i].bbw_per_thread);
            break;
          case ElectionRule::kHighestFirst:
            score = candidates[i].bbw_per_thread;
            break;
        }
        if (audit) {
          (*audit)[i].score = score;
          (*audit)[i].abbw_per_proc = abbw;
        }
        if (score > best_score) {
          best_score = score;
          best_idx = i;
        }
      }
      if (best_idx == candidates.size()) break;  // nothing admissible fits
      allocate(best_idx);
      if (guarding) ++last_slack_elected_;
    }

    // Safety net: if admission blocked everything (e.g. only bus hogs are
    // left and no reserved gang fits), fall back to the unconditional
    // head-of-list allocation — an idle machine helps nobody's guarantee.
    if (out.elected.empty()) {
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (candidates[i].nthreads <= out.idle_procs) {
          if (audit) (*audit)[i].head_default = true;
          allocate(i);
          break;
        }
      }
    }
  }

  // Period accounting for the violation check: this quantum happened, and
  // these reserved apps held the CPU for it.
  ++quanta_in_period_;
  for (int id : out.elected) {
    const auto it = accounts_.find(id);
    if (it != accounts_.end()) ++it->second.quanta_elected;
  }
}

}  // namespace bbsched::core
