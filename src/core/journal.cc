#include "core/journal.h"

#include <cstdio>
#include <cstring>

#include "faults/sysfail.h"

namespace bbsched::core {

namespace {

/// Table-driven CRC-32; the table is built once at first use.
const std::uint32_t* crc_table() {
  static std::uint32_t table[256];
  static const bool built = [] {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) ? 0xedb88320U ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)built;
  return table;
}

// ---- payload encoding primitives (little-endian, fixed width) ----

template <typename T>
void put(std::vector<char>& out, T v) {
  // resize+memcpy rather than insert(): GCC 12's -Werror=array-bounds
  // false-fires on the insert path at some inlining depths.
  const std::size_t off = out.size();
  out.resize(off + sizeof(T));
  std::memcpy(out.data() + off, &v, sizeof(T));
}

void put_string(std::vector<char>& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounded sequential reader over an untrusted buffer.
struct Reader {
  const char* p;
  std::size_t left;

  template <typename T>
  bool get(T& v) {
    if (left < sizeof(T)) return false;
    std::memcpy(&v, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return true;
  }

  bool get_string(std::string& s, std::uint32_t max_len) {
    std::uint32_t n = 0;
    if (!get(n) || n > max_len || left < n) return false;
    s.assign(p, n);
    p += n;
    left -= n;
    return true;
  }
};

// Sanity ceilings for decoded counts: far above anything the manager can
// produce, low enough that CRC-validated-but-hostile input cannot force
// pathological allocations.
constexpr std::uint32_t kMaxFeeds = 4096;
constexpr std::uint32_t kMaxWindow = 65536;
constexpr std::uint32_t kMaxName = 256;

struct RecordHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t payload_len;
  std::uint32_t crc;
};

constexpr std::size_t kHeaderSize = sizeof(RecordHeader);

// A snapshot payload can hold up to kMaxFeeds × kMaxWindow doubles in
// principle; in practice records are a few KB. Reject anything implausibly
// large before allocating.
constexpr std::uint32_t kMaxPayload = 64U * 1024U * 1024U;

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) noexcept {
  const std::uint32_t* table = crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xffffffffU;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xffU] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

void encode_snapshot(const ManagerSnapshot& snap, std::vector<char>& out) {
  out.clear();
  put<std::uint64_t>(out, snap.quantum_index);
  put<std::int32_t>(out, snap.dead_feed_quanta);
  put<std::uint8_t>(out, snap.degraded ? 1 : 0);
  put<std::int32_t>(out, snap.running_tail);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(snap.feeds.size()));
  for (const FeedSnapshot& f : snap.feeds) {
    put_string(out, f.name);
    put<std::int32_t>(out, f.nthreads);
    put<std::int32_t>(out, f.miss_streak);
    put<std::uint8_t>(out, f.has_decayed_estimate ? 1 : 0);
    put<double>(out, f.decayed_estimate);
    put<std::uint8_t>(out, f.quarantined ? 1 : 0);
    put<std::uint8_t>(out, f.tracker.has_latest ? 1 : 0);
    put<double>(out, f.tracker.latest);
    put<std::uint8_t>(out, f.tracker.ewma_seeded ? 1 : 0);
    put<double>(out, f.tracker.ewma);
    put<std::uint32_t>(out,
                       static_cast<std::uint32_t>(f.tracker.window.size()));
    for (double rate : f.tracker.window) put<double>(out, rate);
  }
}

bool decode_snapshot(const char* data, std::size_t len, ManagerSnapshot& out) {
  Reader r{data, len};
  out = ManagerSnapshot{};

  std::uint8_t degraded = 0;
  std::uint32_t feed_count = 0;
  if (!r.get(out.quantum_index) || !r.get(out.dead_feed_quanta) ||
      !r.get(degraded) || !r.get(out.running_tail) || !r.get(feed_count) ||
      feed_count > kMaxFeeds || out.running_tail < 0 ||
      static_cast<std::uint32_t>(out.running_tail) > feed_count) {
    return false;
  }
  out.degraded = degraded != 0;

  out.feeds.resize(feed_count);
  for (FeedSnapshot& f : out.feeds) {
    std::uint8_t has_decay = 0, quarantined = 0, has_latest = 0, seeded = 0;
    std::uint32_t window_len = 0;
    if (!r.get_string(f.name, kMaxName) || !r.get(f.nthreads) ||
        !r.get(f.miss_streak) || !r.get(has_decay) ||
        !r.get(f.decayed_estimate) || !r.get(quarantined) ||
        !r.get(has_latest) || !r.get(f.tracker.latest) || !r.get(seeded) ||
        !r.get(f.tracker.ewma) || !r.get(window_len) ||
        window_len > kMaxWindow || f.nthreads < 1) {
      return false;
    }
    f.has_decayed_estimate = has_decay != 0;
    f.quarantined = quarantined != 0;
    f.tracker.has_latest = has_latest != 0;
    f.tracker.ewma_seeded = seeded != 0;
    f.tracker.window.resize(window_len);
    for (double& rate : f.tracker.window) {
      if (!r.get(rate)) return false;
    }
  }
  return r.left == 0;  // trailing garbage means a framing bug somewhere
}

bool JournalWriter::write_file(const std::string& path,
                               const std::vector<char>& record,
                               bool append) const {
  std::FILE* f = std::fopen(path.c_str(), append ? "ab" : "wb");
  if (f == nullptr) return false;
  // Routed through the sysfail shim: an injected ENOSPC or short write
  // leaves a torn record prefix on disk, exactly what a full filesystem
  // produces — load_latest_snapshot's forward scan discards it.
  const bool ok =
      faults::sys::fwrite(record.data(), 1, record.size(), f) == record.size();
  return (std::fclose(f) == 0) && ok;
}

void JournalWriter::encode_record(const ManagerSnapshot& snap,
                                  std::vector<char>& record) const {
  std::vector<char> payload;
  encode_snapshot(snap, payload);

  record.clear();
  record.reserve(kHeaderSize + payload.size());
  RecordHeader h{kJournalMagic, kJournalVersion,
                 static_cast<std::uint32_t>(payload.size()),
                 crc32(payload.data(), payload.size())};
  const char* hp = reinterpret_cast<const char*>(&h);
  record.insert(record.end(), hp, hp + kHeaderSize);
  record.insert(record.end(), payload.begin(), payload.end());
}

bool JournalWriter::rewrite(const ManagerSnapshot& snap) {
  std::vector<char> record;
  encode_record(snap, record);
  // Single record to a temp file, then atomic rename. A crash (or ENOSPC)
  // between the two leaves either the old journal or the new one — both
  // restorable. Shrinking a multi-record journal to one record is also the
  // degrade ladder's bounded rotation: when appends start failing ENOSPC,
  // this reclaims every byte the journal can reclaim before the manager
  // gives up on journaling.
  const std::string tmp = path_ + ".tmp";
  if (!write_file(tmp, record, /*append=*/false)) {
    std::remove(tmp.c_str());  // never leave a torn temp behind
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) return false;
  records_ = 1;
  return true;
}

bool JournalWriter::append(const ManagerSnapshot& snap) {
  if (records_ >= max_records_) return rewrite(snap);

  std::vector<char> record;
  encode_record(snap, record);
  if (!write_file(path_, record, /*append=*/true)) return false;
  ++records_;
  return true;
}

bool load_latest_snapshot(const std::string& path, ManagerSnapshot& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::vector<char> bytes;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);

  // Forward scan: remember the newest record that passes header + CRC +
  // structural decode. Any violation ends the scan — after a torn or
  // corrupt record, subsequent offsets cannot be trusted to be aligned.
  bool found = false;
  ManagerSnapshot candidate;
  std::size_t off = 0;
  while (off + kHeaderSize <= bytes.size()) {
    RecordHeader h{};
    std::memcpy(&h, bytes.data() + off, kHeaderSize);
    if (h.magic != kJournalMagic || h.version != kJournalVersion ||
        h.payload_len > kMaxPayload) {
      break;
    }
    if (off + kHeaderSize + h.payload_len > bytes.size()) break;  // torn tail
    const char* payload = bytes.data() + off + kHeaderSize;
    if (crc32(payload, h.payload_len) != h.crc) break;
    if (decode_snapshot(payload, h.payload_len, candidate)) {
      out = candidate;
      found = true;
    } else {
      break;
    }
    off += kHeaderSize + h.payload_len;
  }
  return found;
}

}  // namespace bbsched::core
