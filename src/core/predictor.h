// Model-driven scheduling — the paper's §6 future work, implemented:
//
//   "First, we will derive analytic or empirical models of the effect of
//    sharing resources such as the bus ... Using these models, we can
//    re-formulate the multiprocessor scheduling problem as a
//    multi-parametric optimization problem and derive practical
//    model-driven scheduling algorithms."
//
// ContentionPredictor is such an empirical model: it is parameterised by
// three quantities the manager can measure offline on any machine (the
// STREAM-sustained capacity, the single-thread streaming peak, and a
// memory-boundedness exponent) and predicts per-thread slowdowns for any
// candidate gang from the same BBW/thread statistics Eq. 1 consumes.
//
// elect_predictive() then optimizes over gangs greedily: the head of the
// applications list keeps its starvation-freedom guarantee, and remaining
// processors are filled only while the chosen objective improves —
//
//   kMaxThroughput: maximize predicted aggregate progress rate
//                   (machine-wide efficiency; may sacrifice one job),
//   kMinSlowdown:   maximize the worst per-thread speed
//                   (fairness; may deliberately leave processors idle
//                   rather than saturate the bus — something Eq. 1 never
//                   does).
//
// bench/ext_predictive compares both objectives against Eq. 1 and Linux.
#pragma once

#include <span>
#include <vector>

#include "core/election.h"

namespace bbsched::core {

struct PredictorConfig {
  /// Sustained bus capacity (transactions/µs), measured offline via STREAM.
  double capacity_tps = 29.5;
  /// Single-thread streaming peak (transactions/µs), measured via BBMA.
  double per_thread_peak_tps = 23.6;
  /// Memory-boundedness exponent (empirical fit).
  double alpha_exponent = 0.72;
};

/// Analytic contention model over per-thread demand rates.
class ContentionPredictor {
 public:
  explicit ContentionPredictor(const PredictorConfig& cfg) : cfg_(cfg) {}

  /// Memory-boundedness of a thread with demand `d` (trans/µs).
  [[nodiscard]] double alpha(double demand_tps) const;

  struct Prediction {
    /// Per-thread execution-time multipliers (>= 1).
    std::vector<double> slowdown;
    /// Sum over threads of 1/slowdown (aggregate progress rate).
    double aggregate_speed = 0.0;
    /// Speed of the slowest thread (min of 1/slowdown); 1 when empty.
    double worst_speed = 1.0;
    /// Predicted total granted transaction rate.
    double total_rate = 0.0;
  };

  /// Predicts contention for the given per-thread demands.
  [[nodiscard]] Prediction predict(
      std::span<const double> per_thread_demands) const;

  [[nodiscard]] const PredictorConfig& config() const noexcept { return cfg_; }

 private:
  PredictorConfig cfg_;
};

enum class PredictiveObjective {
  kMaxThroughput,
  kMinSlowdown,
};

[[nodiscard]] const char* to_string(PredictiveObjective objective);

/// Model-driven gang election: head-of-list default, then greedy additions
/// while the objective improves. Writes into `out` (cleared first), which
/// the caller reuses across quanta so steady-state elections are
/// allocation-free — the same contract as elect_into().
void elect_predictive_into(
    const std::vector<Candidate>& candidates, int nprocs,
    const PredictorConfig& cfg, PredictiveObjective objective,
    ElectionResult& out);

/// By-value convenience wrapper (tests, offline tools): allocates a fresh
/// result per call, so keep it off hot paths.
[[nodiscard]] ElectionResult elect_predictive(
    const std::vector<Candidate>& candidates, int nprocs,
    const PredictorConfig& cfg,
    PredictiveObjective objective = PredictiveObjective::kMaxThroughput);

}  // namespace bbsched::core
