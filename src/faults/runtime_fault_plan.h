// Seeded process-level chaos schedules (docs/ROBUSTNESS.md §7).
//
// fault_injector.h perturbs the *measurement* layer (counter reads). This
// header models the *process/IPC* layer of the fault space: the manager
// process itself is killed (SIGKILL), stalled (SIGSTOP…SIGCONT), or fed
// corrupt protocol frames, on a schedule that is a pure function of the
// seed — an identical seed replays an identical chaos timeline, which is
// what lets bench/ext_recovery assert recovery invariants reproducibly.
//
// The plan is only the *schedule* (what, when, how long). Executing it —
// signalling a supervised child, dialing the manager socket with garbage —
// requires the runtime layer and lives with the harness that owns those
// handles (bench/ext_recovery.cc), keeping this library free of process
// machinery and link cycles.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.h"

namespace bbsched::faults {

/// One process-level chaos action against the manager.
enum class RuntimeFault : std::uint8_t {
  kKill,     ///< SIGKILL the manager process (crash)
  kStall,    ///< SIGSTOP for duration_us, then SIGCONT (hang)
  kCorrupt,  ///< send a corrupt/truncated protocol frame to the socket
};

[[nodiscard]] const char* to_string(RuntimeFault fault);

struct RuntimeFaultPlanConfig {
  std::uint64_t seed = 0x5eedULL;

  int kills = 5;     ///< SIGKILL events in the plan
  int stalls = 2;    ///< SIGSTOP/SIGCONT events
  int corrupts = 3;  ///< corrupt-frame events

  /// Gap between consecutive events, drawn uniformly per gap. The first
  /// event is one gap after the plan starts.
  std::uint64_t min_gap_us = 300'000;
  std::uint64_t max_gap_us = 800'000;

  /// SIGSTOP duration for kStall events. Pick it longer than the
  /// supervisor's watchdog budget to force a watchdog kill, shorter to
  /// exercise a stall the manager simply rides out.
  std::uint64_t stall_duration_us = 500'000;
};

struct RuntimeFaultEvent {
  RuntimeFault kind = RuntimeFault::kKill;
  std::uint64_t at_us = 0;        ///< offset from plan start
  std::uint64_t duration_us = 0;  ///< kStall only
};

/// Deterministic chaos schedule: the configured event mix, shuffled and
/// spaced by seeded draws, sorted by time. Two plans with equal configs are
/// identical element-for-element.
class RuntimeFaultPlan {
 public:
  RuntimeFaultPlan() : RuntimeFaultPlan(RuntimeFaultPlanConfig{}) {}
  explicit RuntimeFaultPlan(const RuntimeFaultPlanConfig& cfg);

  [[nodiscard]] const RuntimeFaultPlanConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] const std::vector<RuntimeFaultEvent>& events() const noexcept {
    return events_;
  }
  /// Total plan span: time of the last event plus its duration.
  [[nodiscard]] std::uint64_t span_us() const noexcept;

 private:
  RuntimeFaultPlanConfig cfg_;
  std::vector<RuntimeFaultEvent> events_;
};

}  // namespace bbsched::faults
