// Byzantine client simulator (docs/ROBUSTNESS.md §8): a deterministic,
// seedable peer that speaks just enough of protocol v2 to be dangerous.
// Where fault_injector.h corrupts the manager's *counter feed* (trusted
// in-process data gone bad), AdversarialClient attacks from *outside* the
// trust boundary — the UNIX socket and the shared arena — the way a
// malicious or buggy application process would.
//
// Every attack is a pure function of (config, seed): no wall-clock
// randomness, so a failing run replays exactly under a debugger or
// sanitizer. The simulator never asserts on the manager's behaviour itself
// — it reports what happened (accepted / typed-nack / dropped) and the
// tests own the expectations.
#pragma once

#include <cstdint>
#include <string>

namespace bbsched::faults {

/// One hostile behaviour per run (compose several attacks by running
/// several AdversarialClients, as bench/ext_adversarial does).
enum class AttackKind {
  /// Dial + valid hello + abandon, `rounds` times, never sending kReady.
  /// Exhausts accept slots and arenas if admission is uncapped.
  kHelloFlood,
  /// Dial, send a *partial* MsgHeader, then stall for hold_ms. The
  /// manager's SO_RCVTIMEO must end the squat (handshake-timeout fault);
  /// without it one loris freezes the accept path forever.
  kSlowLoris,
  /// Complete a valid handshake, then hold the connection for hold_ms
  /// without ever sending kReady: a registered-but-unschedulable squatter
  /// that load shedding should prefer to evict.
  kNeverReady,
  /// Dial + kReattach with stale and far-future generations, `rounds`
  /// times in a tight loop — the reconnect stampede after a manager
  /// restart, plus epoch confusion.
  kReattachStorm,
  /// Alternates hellos reusing this process's own pid (duplicate
  /// registration — tolerated by design: in-process gangs share a pid)
  /// with hellos *spoofing* a foreign pid, which SO_PEERCRED validation
  /// must reject as invalid-hello.
  kDuplicatePid,
  /// Hellos declaring absurd thread counts (0, negative, INT32_MAX):
  /// each must be answered with a typed invalid-hello nack, never an
  /// allocation sized by the attacker.
  kAbsurdNthreads,
  /// Valid hello frames with SCM_RIGHTS descriptors stapled on — spam the
  /// manager must close (server.faults.unexpected_fd), never accumulate.
  kFdSpam,
  /// Valid handshake + kReady, then scribble the writable arena with
  /// backwards and bus-impossible counter values while keeping the
  /// heartbeat alive. Exercises feed validation, the adversarial strike
  /// ladder, and forced quarantine.
  kArenaScribble,
};

[[nodiscard]] const char* to_string(AttackKind kind) noexcept;

struct AdversaryConfig {
  std::string socket_path;
  AttackKind kind = AttackKind::kHelloFlood;
  std::uint64_t seed = 1;
  /// Connections / frames / scribbles to issue (meaning is per-attack).
  int rounds = 16;
  /// Socket-holding attacks (kSlowLoris, kNeverReady, kArenaScribble):
  /// how long the connection is held or scribbled, total.
  int hold_ms = 100;
  /// Generation echoed on non-exempt frames (reattach storms perturb it).
  std::uint32_t generation = 0;
  /// Name stamped into hellos (suffixed with the round number).
  std::string name = "adversary";
};

/// What the manager did with the attack — tallied, never asserted.
struct AdversaryReport {
  int attempts = 0;       ///< connections (or frames) issued
  int accepted = 0;       ///< HelloAck received
  int nacked = 0;         ///< typed HelloNack received
  int dropped = 0;        ///< closed/ignored with no explanation
  int scribbles = 0;      ///< hostile arena writes performed
  std::int32_t last_nack_reason = 0;  ///< runtime::HelloNackReason as int
};

class AdversarialClient {
 public:
  explicit AdversarialClient(AdversaryConfig cfg);

  /// Executes the configured attack to completion. Blocking; bounded by
  /// rounds/hold_ms. Safe to run from several threads against one manager
  /// (each instance owns its sockets and arena mappings).
  AdversaryReport run();

 private:
  AdversaryReport hello_flood();
  AdversaryReport slow_loris();
  AdversaryReport never_ready();
  AdversaryReport reattach_storm();
  AdversaryReport duplicate_pid();
  AdversaryReport absurd_nthreads();
  AdversaryReport fd_spam();
  AdversaryReport arena_scribble();

  AdversaryConfig cfg_;
};

}  // namespace bbsched::faults
