// perfctr::CounterSource decorator that injects counter faults.
//
// Wraps any CounterSource and perturbs its readings per the FaultInjector's
// seeded schedule. Cumulative-counter semantics are preserved faithfully
// per fault class:
//
//   kDrop / kReadFail — the read "fails": read_transactions returns NaN.
//       Consumers must treat a non-finite reading as a missed sample (the
//       CPU manager's staleness policy does; see docs/ROBUSTNESS.md).
//   kStale            — the previous reading for that handle is returned
//       unchanged (a hung arena updater / frozen backend).
//   kNoise            — the *increment* since the last reading is scaled by
//       a bounded factor, so noise perturbs rates without breaking
//       monotonicity of the cumulative value.
//   kWrap             — the cumulative value collapses to
//       fmod(value, wrap_span): the classic narrow-hardware-counter
//       wraparound, which shows up downstream as a negative delta.
//
// Per-handle state (the last value returned) is kept in a map that grows
// only on first sight of a handle — steady-state reads are lookup + draw,
// no allocation.
#pragma once

#include <cmath>
#include <unordered_map>

#include "faults/fault_injector.h"
#include "perfctr/counters.h"

namespace bbsched::faults {

class FaultyCounterSource final : public perfctr::CounterSource {
 public:
  /// `inner` must outlive this decorator. The injector is owned, so one
  /// decorator = one independent, replayable fault stream.
  FaultyCounterSource(const perfctr::CounterSource& inner,
                      const FaultConfig& cfg)
      : inner_(&inner), injector_(cfg) {}

  [[nodiscard]] double read_transactions(int handle) const override {
    const double truth = inner_->read_transactions(handle);
    if (!injector_.enabled()) return truth;
    const CounterReadFault f = injector_.next_counter_read();
    double& last = last_[handle];
    switch (f.kind) {
      case CounterFault::kNone:
        break;
      case CounterFault::kDrop:
      case CounterFault::kReadFail:
        return std::nan("");
      case CounterFault::kStale:
        return last;
      case CounterFault::kNoise: {
        const double faulted = last + (truth - last) * f.noise_factor;
        last = faulted;
        return faulted;
      }
      case CounterFault::kWrap: {
        const double span = injector_.config().wrap_span;
        const double faulted = span > 0.0 ? std::fmod(truth, span) : truth;
        last = faulted;
        return faulted;
      }
    }
    last = truth;
    return truth;
  }

  [[nodiscard]] const FaultInjector& injector() const noexcept {
    return injector_;
  }

 private:
  const perfctr::CounterSource* inner_;
  // CounterSource::read_transactions is const (a read has no observable
  // side effect on the *true* counter state); the fault stream and the
  // per-handle staleness memory are injection bookkeeping, hence mutable.
  mutable FaultInjector injector_;
  mutable std::unordered_map<int, double> last_;
};

}  // namespace bbsched::faults
