#include "faults/fault_injector.h"

namespace bbsched::faults {

const char* to_string(CounterFault fault) {
  switch (fault) {
    case CounterFault::kNone: return "none";
    case CounterFault::kDrop: return "drop";
    case CounterFault::kReadFail: return "read-fail";
    case CounterFault::kStale: return "stale";
    case CounterFault::kNoise: return "noise";
    case CounterFault::kWrap: return "wrap";
  }
  return "unknown";
}

}  // namespace bbsched::faults
