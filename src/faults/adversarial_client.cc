#include "faults/adversarial_client.h"

#include <atomic>
#include <chrono>
#include <climits>
#include <cstring>
#include <thread>
#include <vector>

#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/arena.h"
#include "runtime/protocol.h"
#include "runtime/signal_gate.h"
#include "stats/rng.h"

namespace bbsched::faults {

using runtime::Arena;
using runtime::HelloAck;
using runtime::HelloMsg;
using runtime::HelloNackMsg;
using runtime::MsgHeader;
using runtime::MsgType;
using runtime::RecvStatus;

const char* to_string(AttackKind kind) noexcept {
  switch (kind) {
    case AttackKind::kHelloFlood: return "hello-flood";
    case AttackKind::kSlowLoris: return "slow-loris";
    case AttackKind::kNeverReady: return "never-ready";
    case AttackKind::kReattachStorm: return "reattach-storm";
    case AttackKind::kDuplicatePid: return "duplicate-pid";
    case AttackKind::kAbsurdNthreads: return "absurd-nthreads";
    case AttackKind::kFdSpam: return "fd-spam";
    case AttackKind::kArenaScribble: return "arena-scribble";
  }
  return "unknown";
}

namespace {

/// Dials the manager socket with a receive timeout so the *adversary*
/// cannot hang its own harness either; -1 on failure.
int dial(const std::string& path) {
  const int sock = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (sock < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(sock);
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(sock);
    return -1;
  }
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(sock, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return sock;
}

HelloMsg make_hello(std::int32_t pid, std::int32_t leader_tid,
                    std::int32_t nthreads, const std::string& name) {
  HelloMsg hello{};
  hello.pid = pid;
  hello.leader_tid = leader_tid;
  hello.nthreads = nthreads;
  std::strncpy(hello.name, name.c_str(), sizeof(hello.name) - 1);
  return hello;
}

/// Reads the manager's answer to a hello and tallies it. Returns the
/// received arena fd (>= 0 only on accept) or -1.
int tally_response(int sock, AdversaryReport& rep) {
  MsgHeader hdr{};
  HelloAck ack{};
  int arena_fd = -1;
  const RecvStatus st = recv_msg(sock, hdr, &ack, sizeof(ack), &arena_fd);
  if (st == RecvStatus::kOk &&
      hdr.type == static_cast<std::uint16_t>(MsgType::kHelloAck)) {
    ++rep.accepted;
    return arena_fd;
  }
  if (arena_fd >= 0) ::close(arena_fd);
  if (st == RecvStatus::kOk &&
      hdr.type == static_cast<std::uint16_t>(MsgType::kHelloNack)) {
    HelloNackMsg nack{};
    std::memcpy(static_cast<void*>(&nack), static_cast<const void*>(&ack),
                sizeof(nack));
    ++rep.nacked;
    rep.last_nack_reason = nack.reason;
    return -1;
  }
  ++rep.dropped;
  return -1;
}

/// Sends one framed hello with `nfds` copies of `spam_fd` stapled on as
/// SCM_RIGHTS ancillary data — more descriptors than any legitimate frame
/// carries. Mirrors protocol.cc's framing so the frame itself is valid.
bool send_hello_with_fd_spam(int sock, std::uint32_t generation,
                             const HelloMsg& hello, int spam_fd, int nfds) {
  MsgHeader hdr{};
  hdr.type = static_cast<std::uint16_t>(MsgType::kHello);
  hdr.payload_len = sizeof(hello);
  hdr.generation = generation;

  unsigned char frame[sizeof(hdr) + sizeof(hello)];
  std::memcpy(frame, &hdr, sizeof(hdr));
  std::memcpy(frame + sizeof(hdr), &hello, sizeof(hello));

  iovec iov{};
  iov.iov_base = frame;
  iov.iov_len = sizeof(frame);

  constexpr int kMaxSpam = 8;
  if (nfds > kMaxSpam) nfds = kMaxSpam;
  alignas(cmsghdr) char control[CMSG_SPACE(kMaxSpam * sizeof(int))] = {};
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  msg.msg_control = control;
  msg.msg_controllen = CMSG_SPACE(static_cast<std::size_t>(nfds) *
                                  sizeof(int));
  cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
  cmsg->cmsg_level = SOL_SOCKET;
  cmsg->cmsg_type = SCM_RIGHTS;
  cmsg->cmsg_len = CMSG_LEN(static_cast<std::size_t>(nfds) * sizeof(int));
  auto* fds = reinterpret_cast<int*>(CMSG_DATA(cmsg));
  for (int i = 0; i < nfds; ++i) fds[i] = spam_fd;

  for (;;) {
    const ssize_t n = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
    if (n == static_cast<ssize_t>(sizeof(frame))) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

AdversarialClient::AdversarialClient(AdversaryConfig cfg)
    : cfg_(std::move(cfg)) {}

AdversaryReport AdversarialClient::run() {
  switch (cfg_.kind) {
    case AttackKind::kHelloFlood: return hello_flood();
    case AttackKind::kSlowLoris: return slow_loris();
    case AttackKind::kNeverReady: return never_ready();
    case AttackKind::kReattachStorm: return reattach_storm();
    case AttackKind::kDuplicatePid: return duplicate_pid();
    case AttackKind::kAbsurdNthreads: return absurd_nthreads();
    case AttackKind::kFdSpam: return fd_spam();
    case AttackKind::kArenaScribble: return arena_scribble();
  }
  return {};
}

AdversaryReport AdversarialClient::hello_flood() {
  AdversaryReport rep;
  const auto tid = static_cast<std::int32_t>(::syscall(SYS_gettid));
  for (int round = 0; round < cfg_.rounds; ++round) {
    const int sock = dial(cfg_.socket_path);
    if (sock < 0) continue;
    ++rep.attempts;
    const HelloMsg hello = make_hello(::getpid(), tid, 1,
                                      cfg_.name + std::to_string(round));
    // Collect the verdict even when the send itself failed: a rate-limited
    // peer can lose the race — the server nacks-and-closes before reading,
    // the send dies with EPIPE, yet the typed nack sits readable in our
    // queue. Only a genuinely answerless close counts as dropped.
    send_msg(sock, MsgType::kHello, cfg_.generation, &hello, sizeof(hello));
    const int arena_fd = tally_response(sock, rep);
    if (arena_fd >= 0) ::close(arena_fd);
    ::close(sock);  // abandon: never kReady, never disconnect politely
  }
  return rep;
}

AdversaryReport AdversarialClient::slow_loris() {
  AdversaryReport rep;
  std::vector<int> socks;
  for (int round = 0; round < cfg_.rounds; ++round) {
    const int sock = dial(cfg_.socket_path);
    if (sock < 0) continue;
    ++rep.attempts;
    // Half a header, then silence: the classic loris. The manager's
    // SO_RCVTIMEO owns this socket's fate from here.
    MsgHeader hdr{};
    hdr.type = static_cast<std::uint16_t>(MsgType::kHello);
    hdr.payload_len = sizeof(HelloMsg);
    send_all(sock, &hdr, sizeof(hdr) / 2);
    socks.push_back(sock);
  }
  sleep_ms(cfg_.hold_ms);
  for (int sock : socks) ::close(sock);
  rep.dropped = static_cast<int>(socks.size());
  return rep;
}

AdversaryReport AdversarialClient::never_ready() {
  AdversaryReport rep;
  const auto tid = static_cast<std::int32_t>(::syscall(SYS_gettid));
  std::vector<int> socks;
  for (int round = 0; round < cfg_.rounds; ++round) {
    const int sock = dial(cfg_.socket_path);
    if (sock < 0) continue;
    ++rep.attempts;
    const HelloMsg hello = make_hello(::getpid(), tid, 1,
                                      cfg_.name + std::to_string(round));
    send_msg(sock, MsgType::kHello, cfg_.generation, &hello, sizeof(hello));
    const int arena_fd = tally_response(sock, rep);
    if (arena_fd >= 0) ::close(arena_fd);
    socks.push_back(sock);  // squat: registered, never kReady
  }
  sleep_ms(cfg_.hold_ms);
  for (int sock : socks) ::close(sock);
  return rep;
}

AdversaryReport AdversarialClient::reattach_storm() {
  AdversaryReport rep;
  stats::Rng rng(cfg_.seed);
  const auto tid = static_cast<std::int32_t>(::syscall(SYS_gettid));
  for (int round = 0; round < cfg_.rounds; ++round) {
    const int sock = dial(cfg_.socket_path);
    if (sock < 0) continue;
    ++rep.attempts;
    // Stale (0), far-future, and random epochs — kReattach is generation-
    // exempt by design, so all must be answered, none believed blindly.
    std::uint32_t gen;
    switch (rng() % 3) {
      case 0: gen = 0; break;
      case 1: gen = cfg_.generation + 1000; break;
      default: gen = static_cast<std::uint32_t>(rng()); break;
    }
    const HelloMsg hello = make_hello(::getpid(), tid, 1,
                                      cfg_.name + std::to_string(round));
    send_msg(sock, MsgType::kReattach, gen, &hello, sizeof(hello));
    const int arena_fd = tally_response(sock, rep);
    if (arena_fd >= 0) ::close(arena_fd);
    ::close(sock);
  }
  return rep;
}

AdversaryReport AdversarialClient::duplicate_pid() {
  AdversaryReport rep;
  const auto tid = static_cast<std::int32_t>(::syscall(SYS_gettid));
  const std::int32_t own_pid = ::getpid();
  for (int round = 0; round < cfg_.rounds; ++round) {
    const int sock = dial(cfg_.socket_path);
    if (sock < 0) continue;
    ++rep.attempts;
    // Even rounds: duplicate registration under our real pid (tolerated —
    // in-process gangs legitimately share one). Odd rounds: a *spoofed*
    // pid, which SO_PEERCRED validation must refuse.
    const std::int32_t pid = (round % 2 == 0) ? own_pid : own_pid + 1;
    const HelloMsg hello = make_hello(pid, tid, 1,
                                      cfg_.name + std::to_string(round));
    send_msg(sock, MsgType::kHello, cfg_.generation, &hello, sizeof(hello));
    const int arena_fd = tally_response(sock, rep);
    if (arena_fd >= 0) ::close(arena_fd);
    ::close(sock);
  }
  return rep;
}

AdversaryReport AdversarialClient::absurd_nthreads() {
  AdversaryReport rep;
  const auto tid = static_cast<std::int32_t>(::syscall(SYS_gettid));
  static constexpr std::int32_t kAbsurd[] = {0, -1, INT32_MAX, 1 << 20,
                                             INT32_MIN};
  for (int round = 0; round < cfg_.rounds; ++round) {
    const int sock = dial(cfg_.socket_path);
    if (sock < 0) continue;
    ++rep.attempts;
    const HelloMsg hello =
        make_hello(::getpid(), tid,
                   kAbsurd[static_cast<std::size_t>(round) % std::size(kAbsurd)],
                   cfg_.name + std::to_string(round));
    send_msg(sock, MsgType::kHello, cfg_.generation, &hello, sizeof(hello));
    const int arena_fd = tally_response(sock, rep);
    if (arena_fd >= 0) ::close(arena_fd);
    ::close(sock);
  }
  return rep;
}

AdversaryReport AdversarialClient::fd_spam() {
  AdversaryReport rep;
  stats::Rng rng(cfg_.seed);
  const auto tid = static_cast<std::int32_t>(::syscall(SYS_gettid));
  for (int round = 0; round < cfg_.rounds; ++round) {
    const int sock = dial(cfg_.socket_path);
    if (sock < 0) continue;
    ++rep.attempts;
    const HelloMsg hello = make_hello(::getpid(), tid, 1,
                                      cfg_.name + std::to_string(round));
    const int nfds = 1 + static_cast<int>(rng() % 8);
    send_hello_with_fd_spam(sock, cfg_.generation, hello, sock, nfds);
    const int arena_fd = tally_response(sock, rep);
    if (arena_fd >= 0) ::close(arena_fd);
    ::close(sock);
  }
  return rep;
}

AdversaryReport AdversarialClient::arena_scribble() {
  AdversaryReport rep;
  stats::Rng rng(cfg_.seed);

  // The manager signals the declared leader tid at every election, so
  // SIGUSR1's process-wide disposition must be the gate's handler (the
  // default action would kill the harness). Installing is enough: on an
  // *unregistered* thread the handler is a no-op, so this thread can
  // declare itself leader, soak up the suspension signals, and keep
  // scribbling — the manager can never actually suspend it. Crucially this
  // consumes no gate slot; the gate never recycles slots, so a fresh
  // registered decoy thread per attack run would exhaust the table under a
  // long adversarial soak.
  runtime::SignalGate::instance().install();

  const int sock = dial(cfg_.socket_path);
  if (sock < 0) return rep;
  ++rep.attempts;
  const HelloMsg hello =
      make_hello(::getpid(),
                 static_cast<std::int32_t>(::syscall(SYS_gettid)), 1,
                 cfg_.name);
  Arena* arena = nullptr;
  send_msg(sock, MsgType::kHello, cfg_.generation, &hello, sizeof(hello));
  const int arena_fd = tally_response(sock, rep);
  if (arena_fd >= 0) {
    void* mem = ::mmap(nullptr, sizeof(Arena), PROT_READ | PROT_WRITE,
                       MAP_SHARED, arena_fd, 0);
    ::close(arena_fd);
    if (mem != MAP_FAILED) arena = static_cast<Arena*>(mem);
  }

  if (arena != nullptr) {
    runtime::ReadyMsg msg{};
    send_msg(sock, MsgType::kReady, cfg_.generation, &msg, sizeof(msg));

    // Scribble: backwards jumps, saturating values, raw garbage — while
    // dutifully bumping the heartbeat so the feed never looks *stale*,
    // only *hostile*. The two failure ladders must stay distinguishable.
    const int slices = std::max(1, cfg_.hold_ms);
    for (int slice = 0; slice < slices; ++slice) {
      std::uint64_t value;
      switch (rng() % 3) {
        case 0:  // backwards: below everything previously published
          value = 0;
          break;
        case 1:  // saturating: no bus could have carried this
          value = ~0ULL;
          break;
        default:  // raw garbage
          value = rng();
          break;
      }
      arena->transactions.store(value, std::memory_order_relaxed);
      arena->heartbeats.fetch_add(1, std::memory_order_relaxed);
      ++rep.scribbles;
      sleep_ms(1);
    }
    ::munmap(arena, sizeof(Arena));
  }
  ::close(sock);
  return rep;
}

}  // namespace bbsched::faults
