#include "faults/sysfail.h"

#include <cerrno>
#include <ctime>

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

namespace bbsched::faults {

namespace {

std::atomic<SysFailInjector*> g_sysfail{nullptr};

/// Process-wide floor for clock_monotonic_us: readings never go backwards
/// even when a jump is injected (or a real clock misbehaves). Timeout
/// arithmetic downstream subtracts two readings, so non-decreasing readings
/// make every delta non-negative by construction.
std::atomic<std::uint64_t> g_clock_floor{0};

[[nodiscard]] bool is_socket_op(SysOp op) noexcept {
  return op == SysOp::kSend || op == SysOp::kRecv || op == SysOp::kSendMsg ||
         op == SysOp::kRecvMsg;
}

[[nodiscard]] bool is_transfer_op(SysOp op) noexcept {
  return op == SysOp::kRead || op == SysOp::kWrite || is_socket_op(op) ||
         op == SysOp::kJournalWrite;
}

}  // namespace

const char* to_string(SysOp op) noexcept {
  switch (op) {
    case SysOp::kRead: return "read";
    case SysOp::kWrite: return "write";
    case SysOp::kSend: return "send";
    case SysOp::kRecv: return "recv";
    case SysOp::kSendMsg: return "sendmsg";
    case SysOp::kRecvMsg: return "recvmsg";
    case SysOp::kAccept: return "accept";
    case SysOp::kMmap: return "mmap";
    case SysOp::kFork: return "fork";
    case SysOp::kJournalWrite: return "journal-write";
    case SysOp::kClock: return "clock";
  }
  return "unknown";
}

SysDecision SysFailInjector::next(SysOp op, std::uint64_t len) {
  if (!cfg_.enabled) return {};
  std::lock_guard<std::mutex> lk(mu_);
  return decide_locked(op, len);
}

SysDecision SysFailInjector::decide_locked(SysOp op, std::uint64_t len) {
  const auto op_idx = static_cast<std::size_t>(op);
  const std::uint64_t call = calls_[op_idx]++;

  SysDecision d;
  bool hit = false;

  // Scripted triggers take precedence over the probabilistic stream so a
  // regression test can pin "the 3rd recvmsg tears at byte 7" regardless of
  // what the probabilities would have drawn.
  for (const SysCallTrigger& t : cfg_.triggers) {
    if (t.op != op || t.call_index != call) continue;
    d.err = t.err;
    if (t.clamp_bytes > 0) {
      d.clamp_bytes = t.clamp_bytes;
    } else if (t.err != 0) {
      // A failed call moves no bytes unless the trigger says a prefix
      // landed first (clamp_bytes > 0 = torn transfer, then the errno).
      d.clamp_bytes = 0;
    }
    d.clock_jump_us = t.clock_jump_us;
    hit = true;
    break;
  }

  if (!hit) {
    switch (op) {
      case SysOp::kMmap:
        if (cfg_.mmap_fail_prob > 0.0 &&
            rng_.uniform() < cfg_.mmap_fail_prob) {
          d.err = ENOMEM;
          hit = true;
        }
        break;
      case SysOp::kAccept:
        if (cfg_.accept_fail_prob > 0.0 &&
            rng_.uniform() < cfg_.accept_fail_prob) {
          d.err = EMFILE;
          hit = true;
        }
        break;
      case SysOp::kFork:
        if (cfg_.fork_fail_prob > 0.0 &&
            rng_.uniform() < cfg_.fork_fail_prob) {
          d.err = EAGAIN;
          hit = true;
        }
        break;
      case SysOp::kClock:
        if (cfg_.clock_jump_prob > 0.0 &&
            rng_.uniform() < cfg_.clock_jump_prob) {
          // Uniform in [-max, +max]: backwards jumps exercise the clamp,
          // forward jumps exercise early-firing timeout arithmetic.
          const double span =
              2.0 * static_cast<double>(cfg_.clock_jump_max_us);
          d.clock_jump_us = static_cast<std::int64_t>(
              (rng_.uniform() - 0.5) * span);
          hit = true;
        }
        break;
      case SysOp::kJournalWrite:
        if (cfg_.journal_fail_prob > 0.0 &&
            rng_.uniform() < cfg_.journal_fail_prob) {
          d.err = ENOSPC;
          // Half the failures land a short prefix first — the torn-record
          // case restore must survive; the other half write nothing.
          if (len > 1 && rng_.uniform() < 0.5) {
            d.clamp_bytes = 1 + static_cast<std::uint64_t>(
                                    rng_.uniform() *
                                    static_cast<double>(len - 1));
          } else {
            d.clamp_bytes = 0;
          }
          hit = true;
        }
        break;
      default:
        break;
    }
  }

  if (!hit && is_transfer_op(op)) {
    if (cfg_.eintr_prob > 0.0 &&
        eintr_streak_[op_idx] < cfg_.max_eintr_burst &&
        rng_.uniform() < cfg_.eintr_prob) {
      d.err = EINTR;
      hit = true;
    } else if (cfg_.short_io_prob > 0.0 && len > 1 &&
               rng_.uniform() < cfg_.short_io_prob) {
      // Clamp to a strict prefix of at least one byte: zero bytes would
      // forge an EOF, which is peer death, not a short transfer.
      d.clamp_bytes = 1 + static_cast<std::uint64_t>(
                              rng_.uniform() * static_cast<double>(len - 1));
      hit = true;
    } else if (is_socket_op(op) && cfg_.eagain_prob > 0.0 &&
               rng_.uniform() < cfg_.eagain_prob) {
      d.err = EAGAIN;
      hit = true;
    }
  }

  if (cfg_.io_chunk_bytes > 0 && is_transfer_op(op) && d.err == 0 &&
      cfg_.io_chunk_bytes < d.clamp_bytes) {
    d.clamp_bytes = cfg_.io_chunk_bytes;
    hit = hit || cfg_.io_chunk_bytes < len;
  }

  eintr_streak_[op_idx] = d.err == EINTR ? eintr_streak_[op_idx] + 1 : 0;

  if (hit) {
    ++stats_.injected;
    if (d.err == EINTR) ++stats_.eintr;
    else if (d.err == EAGAIN && op != SysOp::kFork) ++stats_.eagain;
    else if (op == SysOp::kMmap && d.err != 0) ++stats_.mmap_fail;
    else if (op == SysOp::kAccept && d.err != 0) ++stats_.accept_fail;
    else if (op == SysOp::kFork && d.err != 0) ++stats_.fork_fail;
    else if (op == SysOp::kJournalWrite && d.err != 0) ++stats_.journal_fail;
    else if (op == SysOp::kClock && d.clock_jump_us != 0) ++stats_.clock_jumps;
    else if (d.clamp_bytes != ~std::uint64_t{0}) ++stats_.short_io;
  }
  return d;
}

void SysFailInjector::note_clock_clamped() noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.clock_clamped;
}

SysFailStats SysFailInjector::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void SysFailInjector::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  rng_.reseed(cfg_.seed);
  for (std::size_t i = 0; i < kSysOpCount; ++i) {
    calls_[i] = 0;
    eintr_streak_[i] = 0;
  }
  stats_ = SysFailStats{};
}

void install_sysfail(SysFailInjector* inj) noexcept {
  g_sysfail.store(inj, std::memory_order_release);
}

SysFailInjector* sysfail() noexcept {
  return g_sysfail.load(std::memory_order_acquire);
}

namespace sys {

namespace {

/// Shared preamble: null (production) => caller forwards directly.
[[nodiscard]] SysFailInjector* armed() noexcept {
  SysFailInjector* inj = g_sysfail.load(std::memory_order_acquire);
  return inj != nullptr && inj->enabled() ? inj : nullptr;
}

[[nodiscard]] std::size_t clamped_len(std::size_t len,
                                      const SysDecision& d) noexcept {
  return d.clamp_bytes < len ? static_cast<std::size_t>(d.clamp_bytes) : len;
}

}  // namespace

ssize_t read(int fd, void* buf, std::size_t len) {
  SysFailInjector* inj = armed();
  if (inj == nullptr) return ::read(fd, buf, len);
  const SysDecision d = inj->next(SysOp::kRead, len);
  if (d.err != 0) {
    errno = d.err;
    return -1;
  }
  return ::read(fd, buf, clamped_len(len, d));
}

ssize_t write(int fd, const void* buf, std::size_t len) {
  SysFailInjector* inj = armed();
  if (inj == nullptr) return ::write(fd, buf, len);
  const SysDecision d = inj->next(SysOp::kWrite, len);
  if (d.err != 0) {
    errno = d.err;
    return -1;
  }
  return ::write(fd, buf, clamped_len(len, d));
}

ssize_t send(int sock, const void* buf, std::size_t len, int flags) {
  SysFailInjector* inj = armed();
  if (inj == nullptr) return ::send(sock, buf, len, flags);
  const SysDecision d = inj->next(SysOp::kSend, len);
  if (d.err != 0) {
    errno = d.err;
    return -1;
  }
  return ::send(sock, buf, clamped_len(len, d), flags);
}

ssize_t recv(int sock, void* buf, std::size_t len, int flags) {
  SysFailInjector* inj = armed();
  if (inj == nullptr) return ::recv(sock, buf, len, flags);
  const SysDecision d = inj->next(SysOp::kRecv, len);
  if (d.err != 0) {
    errno = d.err;
    return -1;
  }
  return ::recv(sock, buf, clamped_len(len, d), flags);
}

ssize_t sendmsg(int sock, ::msghdr* msg, int flags) {
  SysFailInjector* inj = armed();
  if (inj == nullptr) return ::sendmsg(sock, msg, flags);
  const std::size_t len = msg->msg_iovlen == 1 ? msg->msg_iov[0].iov_len : 0;
  const SysDecision d = inj->next(SysOp::kSendMsg, len);
  if (d.err != 0) {
    errno = d.err;
    return -1;
  }
  // Shrink the (single) iovec before the real call so the kernel itself
  // performs the short transfer — the suffix stays untouched for the
  // caller's resume loop, and any SCM_RIGHTS payload rides the prefix.
  const std::size_t want = clamped_len(len, d);
  if (msg->msg_iovlen == 1 && want < msg->msg_iov[0].iov_len) {
    const std::size_t original = msg->msg_iov[0].iov_len;
    msg->msg_iov[0].iov_len = want;
    const ssize_t n = ::sendmsg(sock, msg, flags);
    msg->msg_iov[0].iov_len = original;
    return n;
  }
  return ::sendmsg(sock, msg, flags);
}

ssize_t recvmsg(int sock, ::msghdr* msg, int flags) {
  SysFailInjector* inj = armed();
  if (inj == nullptr) return ::recvmsg(sock, msg, flags);
  const std::size_t len = msg->msg_iovlen == 1 ? msg->msg_iov[0].iov_len : 0;
  const SysDecision d = inj->next(SysOp::kRecvMsg, len);
  if (d.err != 0) {
    errno = d.err;
    return -1;
  }
  const std::size_t want = clamped_len(len, d);
  if (msg->msg_iovlen == 1 && want < msg->msg_iov[0].iov_len) {
    const std::size_t original = msg->msg_iov[0].iov_len;
    msg->msg_iov[0].iov_len = want;
    const ssize_t n = ::recvmsg(sock, msg, flags);
    msg->msg_iov[0].iov_len = original;
    return n;
  }
  return ::recvmsg(sock, msg, flags);
}

int accept4(int sock, ::sockaddr* addr, ::socklen_t* addrlen, int flags) {
  SysFailInjector* inj = armed();
  if (inj == nullptr) return ::accept4(sock, addr, addrlen, flags);
  const SysDecision d = inj->next(SysOp::kAccept, 0);
  if (d.err != 0) {
    // The pending connection stays queued: the caller's backoff parks the
    // listen fd and a later retry accepts it — the same recovery sequence a
    // real transient EMFILE produces.
    errno = d.err;
    return -1;
  }
  return ::accept4(sock, addr, addrlen, flags);
}

void* mmap(void* addr, std::size_t len, int prot, int flags, int fd,
           ::off_t offset) {
  SysFailInjector* inj = armed();
  if (inj == nullptr) return ::mmap(addr, len, prot, flags, fd, offset);
  const SysDecision d = inj->next(SysOp::kMmap, 0);
  if (d.err != 0) {
    errno = d.err;
    return MAP_FAILED;
  }
  return ::mmap(addr, len, prot, flags, fd, offset);
}

int memfd_create(const char* name, unsigned int flags) {
  SysFailInjector* inj = armed();
  if (inj == nullptr) {
    return static_cast<int>(::syscall(SYS_memfd_create, name, flags));
  }
  const SysDecision d = inj->next(SysOp::kMmap, 0);
  if (d.err != 0) {
    errno = d.err;
    return -1;
  }
  return static_cast<int>(::syscall(SYS_memfd_create, name, flags));
}

int ftruncate(int fd, ::off_t len) {
  SysFailInjector* inj = armed();
  if (inj == nullptr) return ::ftruncate(fd, len);
  const SysDecision d = inj->next(SysOp::kMmap, 0);
  if (d.err != 0) {
    errno = d.err;
    return -1;
  }
  return ::ftruncate(fd, len);
}

::pid_t fork() {
  SysFailInjector* inj = armed();
  if (inj == nullptr) return ::fork();
  const SysDecision d = inj->next(SysOp::kFork, 0);
  if (d.err != 0) {
    errno = d.err;
    return -1;
  }
  return ::fork();
}

std::size_t fwrite(const void* ptr, std::size_t size, std::size_t nmemb,
                   std::FILE* stream) {
  SysFailInjector* inj = armed();
  if (inj == nullptr) return std::fwrite(ptr, size, nmemb, stream);
  const std::size_t bytes = size * nmemb;
  const SysDecision d = inj->next(SysOp::kJournalWrite, bytes);
  const std::size_t allowed = clamped_len(bytes, d);
  if (d.err == 0 && allowed == bytes) {
    return std::fwrite(ptr, size, nmemb, stream);
  }
  // Injected ENOSPC / short write: put the allowed prefix on disk (that is
  // the torn record the restore path must reject), then report failure the
  // way a full filesystem does — a short item count with errno set.
  std::size_t wrote_bytes = 0;
  if (allowed > 0) {
    wrote_bytes = std::fwrite(ptr, 1, allowed, stream);
  }
  if (d.err != 0) errno = d.err;
  return size > 0 ? wrote_bytes / size : 0;
}

std::uint64_t clock_monotonic_us() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  std::uint64_t now = static_cast<std::uint64_t>(ts.tv_sec) * 1000000ULL +
                      static_cast<std::uint64_t>(ts.tv_nsec) / 1000ULL;

  SysFailInjector* inj = armed();
  if (inj != nullptr) {
    const SysDecision d = inj->next(SysOp::kClock, 0);
    if (d.clock_jump_us != 0) {
      const std::int64_t jumped =
          static_cast<std::int64_t>(now) + d.clock_jump_us;
      now = jumped > 0 ? static_cast<std::uint64_t>(jumped) : 0;
    }
  }

  // Never-backwards clamp (the hardening itself, active in production): a
  // reading below the process-wide floor returns the floor, so deltas
  // computed from consecutive readings are always >= 0.
  std::uint64_t floor = g_clock_floor.load(std::memory_order_relaxed);
  while (now > floor && !g_clock_floor.compare_exchange_weak(
                            floor, now, std::memory_order_relaxed)) {
  }
  if (now < floor) {
    if (inj != nullptr) inj->note_clock_clamped();
    return floor;
  }
  return now;
}

}  // namespace sys

}  // namespace bbsched::faults
