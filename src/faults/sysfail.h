// Deterministic, seedable syscall-failure injection for the native runtime
// (docs/ROBUSTNESS.md §9).
//
// PR 3 made the counter pipeline survivable, PR 4 the manager process, PR 8
// the clients. This layer covers the last hostile party: the kernel. Every
// syscall the runtime's control plane performs — frame sends/receives,
// arena creation and mapping, journal appends, supervisor forks, even
// CLOCK_MONOTONIC reads — goes through the `sys::` shim below. With no
// injector installed the shim is one relaxed atomic load and a predictable
// branch in front of the real call (the same "disabled hook costs one
// branch" contract as FaultInjector); with one installed, a seeded schedule
// decides per call whether to interpose an EINTR, a short transfer, EAGAIN,
// EMFILE on accept, ENOMEM on mmap, ENOSPC / a short write on a journal
// append, a failed fork, or a CLOCK_MONOTONIC jump.
//
// Two schedule modes compose:
//   * probabilistic — per-class probabilities drawn from a seeded stream,
//     for soak tests (bench/ext_syschaos, tests/test_syschaos.cc); and
//   * scripted — SysCallTrigger fires at an exact per-op call index, for
//     byte-precise regression tests (split a frame at offset k, tear a
//     journal record at offset k).
//
// EINTR storms are bounded (max_eintr_burst consecutive per op), so every
// correctly written retry loop terminates under injection. Short reads are
// clamped to at least one byte — a zero-byte read would forge an EOF, which
// is a *different* fault (peer death) with different correct handling.
//
// The shim takes a mutex while an injector is installed and is therefore
// NOT async-signal-safe: signal-handler code (signal_gate.cc) must keep
// calling the kernel directly (the lint rule `sysfail` accepts a justified
// allow(sysfail) escape marker there).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <vector>

#include <sys/socket.h>
#include <sys/types.h>

#include "stats/rng.h"

namespace bbsched::faults {

/// Interposable syscall classes. One per-op call counter each, so scripted
/// triggers address "the 3rd recvmsg" independently of unrelated traffic.
enum class SysOp : std::uint8_t {
  kRead,          ///< ::read (supervisor heartbeat drain)
  kWrite,         ///< ::write (heartbeats, manager wake pipe)
  kSend,          ///< ::send (frame codec payload bytes)
  kRecv,          ///< ::recv (frame codec, liveness probes)
  kSendMsg,       ///< ::sendmsg (frame header + SCM_RIGHTS descriptor)
  kRecvMsg,       ///< ::recvmsg (frame header + ancillary drain)
  kAccept,        ///< ::accept4 (admission)
  kMmap,          ///< ::mmap / memfd_create / ftruncate (arena lifecycle)
  kFork,          ///< ::fork (supervisor respawn)
  kJournalWrite,  ///< std::fwrite on the state journal
  kClock,         ///< CLOCK_MONOTONIC reads (clock-jump injection)
};
inline constexpr std::size_t kSysOpCount = 11;

[[nodiscard]] const char* to_string(SysOp op) noexcept;

/// Scripted injection: fires when `op`'s 0-based call counter reaches
/// `call_index`. `err != 0` fails the call with that errno after moving
/// `clamp_bytes` when the op can transfer partially (ENOSPC mid-record;
/// clamp_bytes 0 means the failed call moved nothing); `err == 0` with
/// `clamp_bytes > 0` performs a short transfer and lets the caller resume;
/// on kClock, `clock_jump_us` is added to the reading.
struct SysCallTrigger {
  SysOp op = SysOp::kRead;
  std::uint64_t call_index = 0;
  int err = 0;
  std::uint64_t clamp_bytes = 0;
  std::int64_t clock_jump_us = 0;
};

/// Seeded schedule. All-zero probabilities and no triggers make an enabled
/// injector a no-op with the identical draw stream, so "zero-probability ≡
/// disabled" is assertable (tests/test_sysfail.cc).
struct SysFailConfig {
  bool enabled = false;
  std::uint64_t seed = 0x5c5ca11ULL;

  double eintr_prob = 0.0;     ///< P(I/O call returns -1/EINTR untried)
  int max_eintr_burst = 8;     ///< consecutive EINTRs per op before forced
                               ///< progress (keeps retry loops terminating)
  double short_io_prob = 0.0;  ///< P(transfer clamped to a strict prefix)
  double eagain_prob = 0.0;    ///< P(socket op returns -1/EAGAIN): simulates
                               ///< SO_RCVTIMEO expiry / full socket buffers
  double mmap_fail_prob = 0.0;     ///< P(arena create/map fails ENOMEM)
  double journal_fail_prob = 0.0;  ///< P(journal write fails ENOSPC; half of
                                   ///< these first land a short prefix)
  double accept_fail_prob = 0.0;   ///< P(accept4 fails EMFILE)
  double fork_fail_prob = 0.0;     ///< P(fork fails EAGAIN)
  double clock_jump_prob = 0.0;    ///< P(CLOCK_MONOTONIC reading jumps)
  std::int64_t clock_jump_max_us = 500'000;  ///< jump magnitude, both signs

  /// Deterministic transfer ceiling: > 0 clamps EVERY I/O transfer to at
  /// most this many bytes (no draw). io_chunk_bytes = 1 exercises every
  /// byte boundary of every frame in one pass.
  std::uint64_t io_chunk_bytes = 0;

  std::vector<SysCallTrigger> triggers;
};

/// What the shim should do with one call.
struct SysDecision {
  int err = 0;  ///< inject -1 (MAP_FAILED / short count) with this errno
  std::uint64_t clamp_bytes = ~std::uint64_t{0};  ///< transfer ceiling
  std::int64_t clock_jump_us = 0;
};

/// Injection counters, snapshot via SysFailInjector::stats(). Exported by
/// the manager as server.sysfail.* gauges (docs/OBSERVABILITY.md).
struct SysFailStats {
  std::uint64_t injected = 0;  ///< every interposed outcome, all classes
  std::uint64_t eintr = 0;
  std::uint64_t short_io = 0;
  std::uint64_t eagain = 0;
  std::uint64_t mmap_fail = 0;
  std::uint64_t journal_fail = 0;
  std::uint64_t accept_fail = 0;
  std::uint64_t fork_fail = 0;
  std::uint64_t clock_jumps = 0;   ///< injected jumps (either sign)
  std::uint64_t clock_clamped = 0; ///< backwards readings clamped by sys::
};

/// Seeded syscall-fault scheduler. Thread-safe: the runtime's threads share
/// one injector, so the *draw stream* is deterministic per seed while the
/// per-thread interleaving follows execution order (the same contract the
/// chaos suite has relied on since PR 3).
class SysFailInjector {
 public:
  SysFailInjector() : SysFailInjector(SysFailConfig{}) {}
  explicit SysFailInjector(const SysFailConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed) {}

  [[nodiscard]] bool enabled() const noexcept { return cfg_.enabled; }
  [[nodiscard]] const SysFailConfig& config() const noexcept { return cfg_; }

  /// Decides the fate of one call of class `op` moving up to `len` bytes
  /// (len 0 for non-transfer ops). Advances the per-op call counter.
  [[nodiscard]] SysDecision next(SysOp op, std::uint64_t len);

  /// Records that sys::clock_monotonic_us() clamped a backwards reading.
  void note_clock_clamped() noexcept;

  [[nodiscard]] SysFailStats stats() const;

  /// Rewinds the seed stream, call counters, and stats so an identical
  /// call sequence replays the identical fault schedule.
  void reset();

 private:
  [[nodiscard]] SysDecision decide_locked(SysOp op, std::uint64_t len);

  mutable std::mutex mu_;
  SysFailConfig cfg_;
  stats::Rng rng_;
  std::uint64_t calls_[kSysOpCount] = {};
  int eintr_streak_[kSysOpCount] = {};
  SysFailStats stats_;
};

/// Installs `inj` (nullptr uninstalls) as the process-wide injector the
/// sys:: shim consults. Not reference counted: the caller keeps the object
/// alive until after uninstalling.
void install_sysfail(SysFailInjector* inj) noexcept;

/// Currently installed injector, or nullptr (the production state).
[[nodiscard]] SysFailInjector* sysfail() noexcept;

/// RAII installer for tests and benches: installs an enabled injector for
/// the scope, restores the previous one (usually nullptr) on exit.
class ScopedSysFail {
 public:
  explicit ScopedSysFail(const SysFailConfig& cfg)
      : injector_(cfg), previous_(sysfail()) {
    install_sysfail(&injector_);
  }
  ~ScopedSysFail() { install_sysfail(previous_); }

  ScopedSysFail(const ScopedSysFail&) = delete;
  ScopedSysFail& operator=(const ScopedSysFail&) = delete;

  [[nodiscard]] SysFailInjector& injector() noexcept { return injector_; }

 private:
  SysFailInjector injector_;
  SysFailInjector* previous_;
};

/// The interposition shim. Call-compatible with the kernel entry points the
/// runtime uses; every wrapper forwards directly when no injector is
/// installed. Short-transfer injection shrinks the request *before* the
/// real call, so injected partial I/O never loses or duplicates bytes —
/// the un-transferred suffix stays with the caller to resume.
namespace sys {

[[nodiscard]] ssize_t read(int fd, void* buf, std::size_t len);
[[nodiscard]] ssize_t write(int fd, const void* buf, std::size_t len);
[[nodiscard]] ssize_t send(int sock, const void* buf, std::size_t len,
                           int flags);
[[nodiscard]] ssize_t recv(int sock, void* buf, std::size_t len, int flags);
/// Single-iovec sendmsg/recvmsg (all the runtime needs): short-transfer
/// injection clamps iov_len, the caller resumes the remainder.
[[nodiscard]] ssize_t sendmsg(int sock, ::msghdr* msg, int flags);
[[nodiscard]] ssize_t recvmsg(int sock, ::msghdr* msg, int flags);
[[nodiscard]] int accept4(int sock, ::sockaddr* addr, ::socklen_t* addrlen,
                          int flags);
[[nodiscard]] void* mmap(void* addr, std::size_t len, int prot, int flags,
                         int fd, ::off_t offset);
[[nodiscard]] int memfd_create(const char* name, unsigned int flags);
[[nodiscard]] int ftruncate(int fd, ::off_t len);
[[nodiscard]] ::pid_t fork();
/// std::fwrite with ENOSPC / short-write injection (journal appends).
[[nodiscard]] std::size_t fwrite(const void* ptr, std::size_t size,
                                 std::size_t nmemb, std::FILE* stream);
/// CLOCK_MONOTONIC in µs, jump-injectable and *never backwards*: readings
/// are clamped to be non-decreasing process-wide, so every timeout delta
/// computed from it is non-negative even when the clock (or the injector)
/// leaps. The clamp runs with or without an injector — it is the hardening,
/// not part of the simulation.
[[nodiscard]] std::uint64_t clock_monotonic_us();

}  // namespace sys

}  // namespace bbsched::faults
