// Deterministic, seedable fault injection for the measurement-to-decision
// pipeline (docs/ROBUSTNESS.md).
//
// The paper's feedback loop — arena samples → BBW/thread estimate → gang
// election — silently assumes well-behaved clients and perfect counters. A
// real user-level manager must survive counter backends that drop reads,
// return stale values, add noise, or wrap around, and applications that die
// mid-quantum. This header models the *counter* layer of that fault space:
// every read the manager performs may be perturbed by a seeded draw, so an
// identical seed replays an identical fault schedule (the chaos harness in
// tests/test_chaos.cc relies on this to assert replay determinism).
//
// The injector is allocation-free after construction: deciding the fate of
// a read is a handful of xoshiro draws and comparisons, so the simulator's
// allocation-free tick path stays allocation-free with injection compiled
// in — enabled or not (bench/perf_ticks asserts both).
#pragma once

#include <cstdint>

#include "stats/rng.h"

namespace bbsched::faults {

/// Outcome classes for one counter read, in the order they are drawn.
enum class CounterFault : std::uint8_t {
  kNone,      ///< the read succeeds and is truthful
  kDrop,      ///< the read never happens (sample missed, detectable absence)
  kReadFail,  ///< the backend errors out (perf_event fd gone, driver unload)
  kStale,     ///< the read returns the previous value (hung arena updater)
  kNoise,     ///< the read is perturbed by bounded relative noise
  kWrap,      ///< the counter wrapped around (cumulative value collapses)
};

[[nodiscard]] const char* to_string(CounterFault fault);

/// Per-read fault probabilities. Draws are evaluated in declaration order
/// and the first hit wins, so the classes are mutually exclusive per read.
/// All-zero probabilities (the default) make the injector a no-op even when
/// `enabled` is true; `enabled == false` short-circuits before any draw so
/// the disabled hook costs one branch.
struct FaultConfig {
  bool enabled = false;
  std::uint64_t seed = 0x5eedULL;

  double drop_prob = 0.0;       ///< P(read silently missing)
  double read_fail_prob = 0.0;  ///< P(backend read failure)
  double stale_prob = 0.0;      ///< P(previous value repeated)
  double noise_prob = 0.0;      ///< P(bounded relative noise)
  double noise_amplitude = 0.25;  ///< max |relative error| when noisy
  double wrap_prob = 0.0;       ///< P(counter wraparound)

  /// Residue span for wrapped counters: a wrap maps the cumulative value to
  /// `fmod(value, wrap_span)`, mimicking a narrow hardware counter.
  double wrap_span = 1024.0;
};

/// Decision for one read: the fault class plus the noise factor to apply
/// when kind == kNoise (multiply the observed delta by it).
struct CounterReadFault {
  CounterFault kind = CounterFault::kNone;
  double noise_factor = 1.0;
};

/// Seeded fault scheduler. One instance per consumer (per scheduler, per
/// counter source); the draw sequence — and therefore the whole fault
/// schedule — is a pure function of the seed and the call order, which in
/// the single-threaded simulator is itself deterministic.
class FaultInjector {
 public:
  FaultInjector() : FaultInjector(FaultConfig{}) {}
  explicit FaultInjector(const FaultConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed) {}

  [[nodiscard]] bool enabled() const noexcept { return cfg_.enabled; }
  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }

  /// Draws the fate of the next counter read. The disabled path performs no
  /// draw at all, so replays are unaffected by hooks that were off.
  [[nodiscard]] CounterReadFault next_counter_read() noexcept {
    CounterReadFault f;
    if (!cfg_.enabled) return f;
    const double u = rng_.uniform();
    double edge = cfg_.drop_prob;
    if (u < edge) {
      f.kind = CounterFault::kDrop;
      return f;
    }
    if (u < (edge += cfg_.read_fail_prob)) {
      f.kind = CounterFault::kReadFail;
      return f;
    }
    if (u < (edge += cfg_.stale_prob)) {
      f.kind = CounterFault::kStale;
      return f;
    }
    if (u < (edge += cfg_.noise_prob)) {
      f.kind = CounterFault::kNoise;
      f.noise_factor =
          1.0 + rng_.uniform(-cfg_.noise_amplitude, cfg_.noise_amplitude);
      return f;
    }
    if (u < edge + cfg_.wrap_prob) f.kind = CounterFault::kWrap;
    return f;
  }

  /// Resets the draw stream to the configured seed (replay support).
  void reset() noexcept { rng_.reseed(cfg_.seed); }

 private:
  FaultConfig cfg_;
  stats::Rng rng_;
};

}  // namespace bbsched::faults
