#include "faults/runtime_fault_plan.h"

#include <algorithm>

namespace bbsched::faults {

const char* to_string(RuntimeFault fault) {
  switch (fault) {
    case RuntimeFault::kKill:
      return "kill";
    case RuntimeFault::kStall:
      return "stall";
    case RuntimeFault::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

RuntimeFaultPlan::RuntimeFaultPlan(const RuntimeFaultPlanConfig& cfg)
    : cfg_(cfg) {
  std::vector<RuntimeFault> kinds;
  kinds.reserve(static_cast<std::size_t>(
      std::max(cfg_.kills, 0) + std::max(cfg_.stalls, 0) +
      std::max(cfg_.corrupts, 0)));
  for (int i = 0; i < cfg_.kills; ++i) kinds.push_back(RuntimeFault::kKill);
  for (int i = 0; i < cfg_.stalls; ++i) kinds.push_back(RuntimeFault::kStall);
  for (int i = 0; i < cfg_.corrupts; ++i) {
    kinds.push_back(RuntimeFault::kCorrupt);
  }

  stats::Rng rng(cfg_.seed);
  // Seeded Fisher–Yates: the interleaving of kills/stalls/corrupts is part
  // of the replayable timeline, not left to container order.
  for (std::size_t i = kinds.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform(0.0, static_cast<double>(i)));
    std::swap(kinds[i - 1], kinds[std::min(j, i - 1)]);
  }

  const double lo = static_cast<double>(cfg_.min_gap_us);
  const double hi = static_cast<double>(
      std::max(cfg_.max_gap_us, cfg_.min_gap_us));
  std::uint64_t clock_us = 0;
  events_.reserve(kinds.size());
  for (const RuntimeFault kind : kinds) {
    clock_us += static_cast<std::uint64_t>(
        lo < hi ? rng.uniform(lo, hi) : lo);
    RuntimeFaultEvent ev;
    ev.kind = kind;
    ev.at_us = clock_us;
    ev.duration_us = kind == RuntimeFault::kStall ? cfg_.stall_duration_us : 0;
    events_.push_back(ev);
  }
}

std::uint64_t RuntimeFaultPlan::span_us() const noexcept {
  if (events_.empty()) return 0;
  const RuntimeFaultEvent& last = events_.back();
  return last.at_us + last.duration_us;
}

}  // namespace bbsched::faults
