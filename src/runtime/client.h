// Application-side runtime library (paper §4):
//
// "A run-time library which accompanies the CPU manager offers all the
//  necessary functionality for the cooperation between the CPU manager and
//  applications. The modifications required to the source code of
//  applications are limited to the addition of calls for connection and
//  disconnection and to the interception of thread creation and
//  destruction."
//
// Usage from an application:
//   Client client;
//   client.connect(socket_path, "myapp", nthreads);   // leader thread
//   ... each worker thread: client.register_worker(); ...
//   client.ready();                                    // all registered
//   ... workers call client.credit(slot, n) as they issue memory traffic ...
//   client.disconnect();
//
// The client starts an updater thread that publishes the accumulated
// transaction counts to the shared arena at the period the manager
// requested (twice per scheduling quantum). The updater thread is not
// registered with the signal gate, so it keeps publishing even while the
// workers are blocked — matching the paper's arena semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "perfctr/software_counters.h"
#include "runtime/arena.h"

namespace bbsched::runtime {

/// Retry budget for Client::connect: jittered exponential backoff between
/// attempts (stats/rng.h supplies the deterministic jitter stream, so a
/// seeded client replays identical sleep schedules). attempts == 1 is the
/// legacy single-shot connect.
struct ConnectRetry {
  int attempts = 1;                         ///< total tries (>= 1)
  std::uint64_t initial_backoff_us = 10'000;  ///< sleep after the 1st failure
  double multiplier = 2.0;                  ///< backoff growth per failure
  std::uint64_t max_backoff_us = 1'000'000; ///< backoff ceiling
  /// Relative jitter: each sleep is backoff * (1 ± jitter/2), decorrelating
  /// reconnect stampedes after a manager restart.
  double jitter = 0.5;
  std::uint64_t seed = 0x5eedULL;           ///< jitter stream seed
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the manager. Must be called by the application's leader
  /// thread (the thread the manager will signal); it is registered as
  /// worker 0 automatically. Returns false if the manager is unreachable.
  bool connect(const std::string& socket_path, const std::string& name,
               int nthreads);

  /// connect() with a retry budget: failed attempts back off exponentially
  /// (jittered) until one succeeds or the budget is spent. Use when racing
  /// a manager restart instead of hand-rolled sleep loops.
  bool connect(const std::string& socket_path, const std::string& name,
               int nthreads, const ConnectRetry& retry);

  /// Registers the calling thread as a worker (signal gate + counter slot).
  /// Returns the thread's counter slot. Call once per worker thread.
  int register_worker();

  /// Removes the calling thread from signal forwarding. Call from the
  /// worker thread right before it exits (the paper's "interception of
  /// thread destruction").
  void unregister_worker();

  /// Credits `n` bus transactions to worker `slot`.
  void credit(int slot, std::uint64_t n) {
    perfctr::global_counters().add(slot, n);
  }

  /// Announces that all `nthreads` workers are registered; the manager may
  /// start blocking/unblocking this application.
  bool ready();

  /// Stops the updater and closes the connection.
  void disconnect();

  /// Arms automatic reattach: when the updater detects the manager's death
  /// it releases the signal gate (free-run), then retries the connection
  /// under `retry`'s jittered-backoff budget, sending kReattach so the new
  /// manager generation adopts this application's journaled feed state.
  /// On success the gate is re-armed and the workers come back under gang
  /// gating — no thread restarts. Budget exhausted => permanent free-run.
  /// Call before ready(). attempts <= 0 disables (the default).
  void set_reattach(const ConnectRetry& retry) { reattach_ = retry; }

  /// Manager generation this client is attached to (learned from HelloAck;
  /// bumps after every successful reattach).
  [[nodiscard]] std::uint32_t generation() const noexcept {
    return generation_.load(std::memory_order_relaxed);
  }

  /// Successful reattaches to a restarted manager so far.
  [[nodiscard]] int reattaches() const noexcept {
    return reattaches_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool connected() const noexcept {
    return sock_.load(std::memory_order_relaxed) >= 0;
  }

  /// True once the updater detected the manager's death (socket EOF). The
  /// signal gate has then been released: the application free-runs under
  /// the kernel scheduler instead of staying suspended forever.
  [[nodiscard]] bool unmanaged() const noexcept {
    return unmanaged_.load(std::memory_order_relaxed);
  }

  /// Failed attempts before the last successful connect() (0 = first try).
  [[nodiscard]] int last_connect_retries() const noexcept {
    return last_connect_retries_;
  }

  /// HelloNackReason (as int) from the manager's most recent typed
  /// rejection of this client; 0 = never refused. Lets a refused client
  /// distinguish "server full / rate limited, retry later" from "my hello
  /// is broken" (see protocol.h).
  [[nodiscard]] std::int32_t last_nack_reason() const noexcept {
    return last_nack_reason_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t update_period_us() const noexcept {
    return update_period_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Arena* arena() const noexcept {
    return arena_.load(std::memory_order_relaxed);
  }

  /// Sum of all registered workers' counters (what the updater publishes).
  [[nodiscard]] std::uint64_t total_transactions() const;

  /// Counter slot of the leader (the thread that called connect()); -1
  /// before connecting.
  [[nodiscard]] int leader_counter_slot() const {
    std::lock_guard<std::mutex> lk(mu_);
    return counter_slots_.empty() ? -1 : counter_slots_.front();
  }

 private:
  void updater_loop();
  /// One reattach attempt from the updater thread: reconnect, kReattach
  /// handshake, arena remap, kReady, gate re-arm. False leaves the client
  /// free-running with its previous state intact.
  bool try_reattach();
  /// Sleeps `us` in small slices, aborting early when disconnect() asked
  /// the updater to stop. Returns false on stop.
  bool interruptible_sleep_us(std::uint64_t us);

  // sock_ / arena_ / update_period_us_ are atomics because the updater
  // thread swaps them during a reattach while other threads read them
  // through the accessors above.
  std::atomic<int> sock_{-1};
  std::atomic<Arena*> arena_{nullptr};
  std::atomic<std::uint64_t> update_period_us_{0};
  int nthreads_ = 0;

  // Connection identity, kept for reattach (the manager must keep
  // signalling the original leader tid — the workers never restart).
  std::string socket_path_;
  std::string name_;
  std::int32_t leader_tid_ = 0;
  std::atomic<std::uint32_t> generation_{0};
  ConnectRetry reattach_{.attempts = 0};
  std::atomic<int> reattaches_{0};

  mutable std::mutex mu_;
  std::vector<int> counter_slots_;

  std::thread updater_;
  std::atomic<bool> stop_updater_{false};
  std::atomic<bool> unmanaged_{false};
  int last_connect_retries_ = 0;
  std::atomic<std::int32_t> last_nack_reason_{0};
};

}  // namespace bbsched::runtime
