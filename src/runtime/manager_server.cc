#include "runtime/manager_server.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <ctime>

#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/syscall.h>
#include <sys/un.h>
#include <unistd.h>

#include "faults/sysfail.h"
#include "runtime/protocol.h"
#include "runtime/signal_gate.h"

namespace bbsched::runtime {

namespace {

int tgkill_portable(pid_t tgid, pid_t tid, int sig) {
  return static_cast<int>(::syscall(SYS_tgkill, tgid, tid, sig));
}

/// SO_PEERCRED credential layout. glibc's `struct ucred` is hidden behind
/// _GNU_SOURCE, which the strict -std=c++20 build does not define; the wire
/// layout is kernel-ABI-fixed, so declaring it locally is safe.
struct PeerCred {
  pid_t pid;
  uid_t uid;
  gid_t gid;
};

#ifndef SO_PEERCRED
#define SO_PEERCRED 17
#endif

/// Kernel pid of the connecting peer, or 0 when unavailable.
pid_t peer_pid(int sock) {
  PeerCred cred{};
  socklen_t len = sizeof(cred);
  if (::getsockopt(sock, SOL_SOCKET, SO_PEERCRED, &cred, &len) != 0) return 0;
  return cred.pid;
}

/// Upper bound on worker threads one hello may declare. Far above any real
/// gang (the paper's machines have tens of processors), far below the
/// "nthreads = INT_MAX" resource-exhaustion probe.
constexpr int kMaxNthreads = 4096;

/// Bounded size of the per-peer handshake-rate table: a pid-spraying
/// adversary recycles the oldest window instead of growing manager memory.
constexpr std::size_t kPeerWindowSlots = 64;

/// Largest client->manager payload: reused as the receive buffer so an
/// unexpected-but-well-formed frame type is classified (bad-message fault)
/// instead of being conflated with a truncated read.
constexpr std::size_t kMaxClientPayload =
    sizeof(HelloMsg) > sizeof(ReadyMsg) ? sizeof(HelloMsg) : sizeof(ReadyMsg);

}  // namespace

std::uint64_t monotonic_now_us() {
  // Routed through the sysfail shim: readings are clamped non-decreasing
  // process-wide, so timeout deltas computed from this clock are never
  // negative even when the clock (or the injector) leaps backwards.
  return faults::sys::clock_monotonic_us();
}

ManagerServer::ManagerServer(const ServerConfig& cfg)
    : cfg_(cfg), manager_(cfg.manager) {
  if (cfg_.nprocs <= 0) {
    const long n = ::sysconf(_SC_NPROCESSORS_ONLN);
    cfg_.nprocs = n > 0 ? static_cast<int>(n) : 1;
  }
  manager_.set_tracer(cfg_.tracer);
  manager_.set_metrics(cfg_.metrics);
  if (cfg_.metrics != nullptr) {
    m_dead_leaders_ = &cfg_.metrics->counter("server.faults.dead_leaders");
    m_stale_arenas_ = &cfg_.metrics->counter("server.faults.stale_arenas");
    m_handshake_timeouts_ =
        &cfg_.metrics->counter("server.faults.handshake_timeouts");
    m_stale_sockets_ = &cfg_.metrics->counter("server.faults.stale_sockets");
    m_bad_messages_ = &cfg_.metrics->counter("server.faults.bad_message");
    m_reattaches_ = &cfg_.metrics->counter("server.recovery.reattaches");
    m_restores_ = &cfg_.metrics->counter("server.recovery.restores");
    m_journal_appends_ =
        &cfg_.metrics->counter("server.recovery.journal_appends");
    m_journal_errors_ =
        &cfg_.metrics->counter("server.recovery.journal_errors");
    m_unexpected_fd_ = &cfg_.metrics->counter("server.faults.unexpected_fd");
    m_invalid_hello_ = &cfg_.metrics->counter("server.faults.invalid_hello");
    m_scribbles_ = &cfg_.metrics->counter("server.adversarial.scribbles");
    m_adv_quarantines_ =
        &cfg_.metrics->counter("server.adversarial.quarantines");
    m_accept_backoffs_ =
        &cfg_.metrics->counter("server.overload.accept_backoffs");
    m_rejected_full_ = &cfg_.metrics->counter("server.overload.rejected_full");
    m_rate_limited_ = &cfg_.metrics->counter("server.overload.rate_limited");
    m_load_sheds_ = &cfg_.metrics->counter("server.overload.load_sheds");
    m_election_us_ = &cfg_.metrics->histogram(
        "server.election_us",
        {5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
         10000.0});
    m_journal_rotations_ =
        &cfg_.metrics->counter("server.recovery.journal_rotations");
    m_journal_degraded_g_ = &cfg_.metrics->gauge("manager.journal.degraded");
    m_arena_failures_ =
        &cfg_.metrics->counter("server.faults.arena_exhausted");
    m_sysfail_injected_ = &cfg_.metrics->gauge("server.sysfail.injected");
    m_sysfail_clock_clamped_ =
        &cfg_.metrics->gauge("server.sysfail.clock_clamped");
  }
  peer_windows_.reserve(kPeerWindowSlots);
}

ManagerServer::~ManagerServer() { stop(); }

void ManagerServer::count_fault(obs::FaultKind kind, int app_id, double value,
                                std::uint64_t now_us) {
  switch (kind) {
    case obs::FaultKind::kDeadLeader:
      if (m_dead_leaders_ != nullptr) m_dead_leaders_->inc();
      break;
    case obs::FaultKind::kStaleArena:
      if (m_stale_arenas_ != nullptr) m_stale_arenas_->inc();
      break;
    case obs::FaultKind::kHandshakeTimeout:
      if (m_handshake_timeouts_ != nullptr) m_handshake_timeouts_->inc();
      break;
    case obs::FaultKind::kStaleSocket:
      if (m_stale_sockets_ != nullptr) m_stale_sockets_->inc();
      break;
    case obs::FaultKind::kBadMessage:
      if (m_bad_messages_ != nullptr) m_bad_messages_->inc();
      break;
    case obs::FaultKind::kUnexpectedFd:
      if (m_unexpected_fd_ != nullptr) m_unexpected_fd_->inc(value);
      break;
    case obs::FaultKind::kInvalidHello:
      if (m_invalid_hello_ != nullptr) m_invalid_hello_->inc();
      break;
    case obs::FaultKind::kAdversarialFeed:
      if (m_scribbles_ != nullptr) m_scribbles_->inc();
      break;
    case obs::FaultKind::kAcceptBackoff:
      if (m_accept_backoffs_ != nullptr) m_accept_backoffs_->inc();
      break;
    case obs::FaultKind::kAdmissionRejected:
      // value carries the HelloNackReason: split into the overload metrics.
      // Each reason maps to exactly one counter — kInvalidHello nacks are
      // already accounted as server.faults.invalid_hello and must not
      // inflate the server-full figure.
      switch (static_cast<HelloNackReason>(static_cast<std::int32_t>(value))) {
        case HelloNackReason::kRateLimited:
          if (m_rate_limited_ != nullptr) m_rate_limited_->inc();
          break;
        case HelloNackReason::kServerFull:
          if (m_rejected_full_ != nullptr) m_rejected_full_->inc();
          break;
        case HelloNackReason::kInvalidHello:
          break;  // counted at the validation site (invalid_hello)
        case HelloNackReason::kResourceExhausted:
          break;  // counted at the arena-creation site (arena_exhausted)
      }
      break;
    case obs::FaultKind::kArenaExhausted:
      if (m_arena_failures_ != nullptr) m_arena_failures_->inc();
      break;
    case obs::FaultKind::kJournalDegraded:
      if (m_journal_degraded_g_ != nullptr) m_journal_degraded_g_->set(1.0);
      break;
    default:
      break;
  }
  if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
    cfg_.tracer->fault(now_us, {app_id, kind, value});
  }
}

bool ManagerServer::start() {
  assert(!started_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (cfg_.socket_path.size() >= sizeof(addr.sun_path)) return false;
  std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  // Crash recovery: the socket file may have been left behind by a dead
  // manager. Probe it — if something accepts, a live manager owns the path
  // and we must not steal it; if the connect is refused, the file is stale
  // and safe to unlink. (No file at all: plain first start.)
  const int probe = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (probe >= 0) {
    if (::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      ::close(probe);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;  // a live manager already serves this path
    }
    const bool stale = errno != ENOENT;
    ::close(probe);
    if (stale) {
      ::unlink(cfg_.socket_path.c_str());
      count_fault(obs::FaultKind::kStaleSocket, -1, 0.0, monotonic_now_us());
    }
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::pipe2(wake_pipe_, O_CLOEXEC) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  // Crash recovery: adopt the newest intact journal snapshot before the
  // manager loop starts. Restored feeds are parked inside the CpuManager
  // until their applications reattach; a missing/corrupt journal simply
  // cold-starts (load_latest_snapshot never crashes on garbage).
  restored_feeds_ = 0;
  if (!cfg_.journal_path.empty()) {
    core::ManagerSnapshot snap;
    if (core::load_latest_snapshot(cfg_.journal_path, snap)) {
      restored_feeds_ = manager_.restore(snap);
      if (m_restores_ != nullptr) m_restores_->inc();
      if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
        cfg_.tracer->recovery(
            monotonic_now_us(),
            {cfg_.generation, snap.quantum_index, restored_feeds_,
             static_cast<std::uint8_t>(snap.degraded ? 1 : 0)});
      }
    }
    journal_ = std::make_unique<core::JournalWriter>(
        cfg_.journal_path, std::max(1, cfg_.journal_max_records));
    quanta_since_journal_ = 0;
  }

  stopping_ = false;
  started_ = true;
  quantum_start_us_ = monotonic_now_us();
  samples_taken_ = 0;
  thread_ = std::thread([this] { loop(); });
  return true;
}

void ManagerServer::stop() {
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  // The wake byte MUST land: a write lost to EINTR would leave the manager
  // thread parked in poll() and this join hanging. The pipe is empty except
  // for this one byte, so a short write cannot actually occur — but retry
  // anyway; the loop costs nothing when the first attempt succeeds.
  const char byte = 'x';
  for (;;) {
    const ssize_t n = faults::sys::write(wake_pipe_[1], &byte, 1);
    if (n == 1) break;
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    break;  // unwritable pipe: nothing more we can do
  }
  thread_.join();
  started_ = false;

  // Leave no application suspended behind us.
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& app : apps_) {
      if (app->blocked) set_blocked(*app, false);
      if (app->arena != nullptr) ::munmap(app->arena, sizeof(Arena));
      if (app->arena_fd >= 0) ::close(app->arena_fd);
      if (app->sock >= 0) ::close(app->sock);
    }
    apps_.clear();
  }
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(cfg_.socket_path.c_str());
}

bool ManagerServer::set_blocked(AppConn& app, bool blocked) {
  if (app.blocked == blocked) return true;
  app.blocked = blocked;
  // One signal to the leader thread; the application runtime forwards it to
  // the siblings (signal_gate.h).
  const int rc = tgkill_portable(app.pid, app.leader_tid,
                                 blocked ? kBlockSignal : kUnblockSignal);
  if (rc < 0 && errno == ESRCH) {
    // The leader thread no longer exists (SIGKILL, crash): this application
    // cannot be scheduled or unblocked, only reaped.
    app.dead = true;
    return false;
  }
  return true;
}

bool ManagerServer::admit_peer(pid_t pid, std::uint64_t now_us) {
  if (cfg_.handshake_attempts_per_peer <= 0 || pid == 0) return true;
  const std::uint64_t window_us =
      static_cast<std::uint64_t>(std::max(1, cfg_.handshake_window_ms)) *
      1000ULL;
  PeerWindow* slot = nullptr;
  PeerWindow* oldest = nullptr;
  for (auto& w : peer_windows_) {
    if (w.pid == pid) {
      slot = &w;
      break;
    }
    if (oldest == nullptr || w.window_start_us < oldest->window_start_us) {
      oldest = &w;
    }
  }
  if (slot == nullptr) {
    if (peer_windows_.size() < kPeerWindowSlots) {
      peer_windows_.push_back({});
      slot = &peer_windows_.back();
    } else {
      slot = oldest;  // recycle: the table never grows past its cap
    }
    slot->pid = pid;
    slot->window_start_us = now_us;
    slot->attempts = 0;
  } else if (now_us - slot->window_start_us >= window_us) {
    slot->window_start_us = now_us;
    slot->attempts = 0;
  }
  return ++slot->attempts <= cfg_.handshake_attempts_per_peer;
}

void ManagerServer::nack_and_close(int sock, HelloNackReason reason,
                                   std::uint32_t retry_after_ms,
                                   std::uint64_t now_us) {
  HelloNackMsg msg{};
  msg.reason = static_cast<std::int32_t>(reason);
  msg.retry_after_ms = retry_after_ms;
  // Account for the rejection before the nack hits the wire: once the peer
  // can read it, a metrics observer must already see the rejection counted.
  count_fault(obs::FaultKind::kAdmissionRejected, -1,
              static_cast<double>(static_cast<std::int32_t>(reason)), now_us);
  // Best-effort: a peer that already vanished just loses the explanation.
  send_msg(sock, MsgType::kHelloNack, cfg_.generation, &msg, sizeof(msg));
  ::close(sock);
}

bool ManagerServer::shed_victim_locked(std::uint64_t now_us) {
  // Shedding order: a classified-adversarial feed first, then a feed the
  // staleness ladder already quarantined (its estimate is written off
  // anyway), then a connection that never reached kReady (a slow-loris
  // squatter holds a socket but no schedulable job). Oldest first within a
  // class. A healthy ready feed is never shed for a newcomer.
  std::size_t victim = apps_.size();
  int best_class = 0;
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    const AppConn& app = *apps_[i];
    int cls = 0;
    if (app.adversarial) {
      cls = 3;
    } else if (app.manager_id >= 0 &&
               manager_.feed_state(app.manager_id) ==
                   obs::DegradationState::kQuarantined) {
      cls = 2;
    } else if (!app.ready) {
      cls = 1;
    }
    if (cls > best_class ||
        (cls == best_class && cls > 0 && victim < apps_.size() &&
         app.connected_at_us < apps_[victim]->connected_at_us)) {
      best_class = cls;
      victim = i;
    }
  }
  if (victim >= apps_.size()) return false;
  if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
    cfg_.tracer->job_state_change(
        now_us, {apps_[victim]->manager_id, -1, obs::JobState::kConnected,
                 obs::JobState::kDisconnected});
  }
  drop_client_locked(victim);
  if (m_load_sheds_ != nullptr) m_load_sheds_->inc();
  return true;
}

void ManagerServer::accept_connection() {
  const std::uint64_t now = monotonic_now_us();
  const int sock =
      faults::sys::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (sock < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      return;  // transient; the next poll round retries at full speed
    }
    // Hard accept failure — EMFILE/ENFILE fd exhaustion, ENOBUFS/ENOMEM —
    // leaves the listen fd permanently readable. Without backoff the loop
    // would spin at 100% CPU re-polling it; instead the listen socket is
    // parked (loop() masks it) for an exponentially growing interval.
    accept_backoff_ms_ =
        accept_backoff_ms_ == 0
            ? std::max(1, cfg_.accept_backoff_initial_ms)
            : std::min(accept_backoff_ms_ * 2,
                       std::max(1, cfg_.accept_backoff_max_ms));
    accept_retry_at_us_ =
        now + static_cast<std::uint64_t>(accept_backoff_ms_) * 1000ULL;
    count_fault(obs::FaultKind::kAcceptBackoff, -1,
                static_cast<double>(accept_backoff_ms_), now);
    return;
  }
  accept_backoff_ms_ = 0;  // healthy again; next failure restarts small
  accept_retry_at_us_ = 0;

  // Bound every receive on this connection: a client that stalls mid-
  // handshake (or later leaves a half-written ReadyMsg) must not be able to
  // freeze the manager loop with it.
  if (cfg_.handshake_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = cfg_.handshake_timeout_ms / 1000;
    tv.tv_usec = (cfg_.handshake_timeout_ms % 1000) * 1000;
    ::setsockopt(sock, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  // Per-peer handshake rate limit, checked before a single frame is read:
  // a reattach storm from one process is turned away at the door instead of
  // consuming a receive timeout each.
  const pid_t cred_pid = peer_pid(sock);
  if (!admit_peer(cred_pid, now)) {
    nack_and_close(sock, HelloNackReason::kRateLimited,
                   static_cast<std::uint32_t>(
                       std::max(1, cfg_.handshake_window_ms)),
                   now);
    return;
  }

  MsgHeader hdr{};
  HelloMsg hello{};
  int stray_fd = -1;
  int unexpected = 0;
  const RecvStatus st =
      recv_msg(sock, hdr, &hello, sizeof(hello), &stray_fd, &unexpected);
  // Clients never legitimately attach descriptors; one delivered into
  // fd_out is as unexpected as the drained extras.
  if (stray_fd >= 0) {
    ::close(stray_fd);
    ++unexpected;
  }
  if (unexpected > 0) {
    count_fault(obs::FaultKind::kUnexpectedFd, -1,
                static_cast<double>(unexpected), now);
  }
  const bool is_hello =
      st == RecvStatus::kOk &&
      (hdr.type == static_cast<std::uint16_t>(MsgType::kHello) ||
       hdr.type == static_cast<std::uint16_t>(MsgType::kReattach));
  if (!is_hello) {
    // A clean close or a receive timeout mid-handshake is a handshake
    // failure; a structurally broken frame — or a well-formed frame of a
    // type that cannot open a handshake (e.g. kReady first) — is a
    // protocol violation, not a timeout.
    count_fault(st == RecvStatus::kTimeout || st == RecvStatus::kClosed
                    ? obs::FaultKind::kHandshakeTimeout
                    : obs::FaultKind::kBadMessage,
                -1, 0.0, now);
    ::close(sock);
    return;
  }

  // Trust boundary (docs/ROBUSTNESS.md §8): every HelloMsg field is hostile
  // until validated. nthreads bounds an allocation loop; the name must be
  // NUL-terminable inside its buffer; a pid that contradicts the kernel's
  // SO_PEERCRED is a spoof (0 = credentials unavailable: tolerated).
  const bool name_ok = ::memchr(hello.name, '\0', sizeof(hello.name)) !=
                       nullptr;
  const bool pid_ok =
      hello.pid > 0 && (cred_pid == 0 || hello.pid == cred_pid);
  if (hello.nthreads < 1 || hello.nthreads > kMaxNthreads || !name_ok ||
      !pid_ok) {
    count_fault(obs::FaultKind::kInvalidHello, -1,
                static_cast<double>(hello.nthreads), now);
    nack_and_close(sock, HelloNackReason::kInvalidHello, 0, now);
    return;
  }
  const bool reattach =
      hdr.type == static_cast<std::uint16_t>(MsgType::kReattach);

  // Admission cap. Prefer shedding a distrusted or never-ready connection
  // over refusing a presumably honest newcomer.
  if (cfg_.max_clients > 0) {
    std::lock_guard<std::mutex> lk(mu_);
    if (apps_.size() >= static_cast<std::size_t>(cfg_.max_clients) &&
        !shed_victim_locked(now)) {
      nack_and_close(sock, HelloNackReason::kServerFull,
                     static_cast<std::uint32_t>(
                         cfg_.manager.quantum_us / 1000ULL),
                     now);
      return;
    }
  }

  // Create the shared arena as an anonymous memfd and hand it over.
  // Creation or mapping can fail under memory pressure (ENOMEM/ENFILE
  // class): that is the *manager's* resource problem, not the client's —
  // refuse admission gracefully with a typed nack carrying a retry hint
  // instead of silently dropping (or worse, crashing on) an honest client.
  const int arena_fd = arena_create_fd();
  if (arena_fd < 0) {
    count_fault(obs::FaultKind::kArenaExhausted, -1,
                static_cast<double>(errno), now);
    nack_and_close(sock, HelloNackReason::kResourceExhausted,
                   static_cast<std::uint32_t>(
                       cfg_.manager.quantum_us / 1000ULL),
                   now);
    return;
  }
  Arena* mapped = arena_map(arena_fd);
  if (mapped == nullptr) {
    count_fault(obs::FaultKind::kArenaExhausted, -1,
                static_cast<double>(errno), now);
    ::close(arena_fd);
    nack_and_close(sock, HelloNackReason::kResourceExhausted,
                   static_cast<std::uint32_t>(
                       cfg_.manager.quantum_us / 1000ULL),
                   now);
    return;
  }
  auto* arena = new (mapped) Arena();
  const std::uint64_t period =
      cfg_.manager.quantum_us /
      static_cast<std::uint64_t>(std::max(1, cfg_.manager.samples_per_quantum));
  arena->update_period_us.store(period, std::memory_order_relaxed);

  auto app = std::make_unique<AppConn>();
  app->sock = sock;
  app->pid = hello.pid;
  app->leader_tid = hello.leader_tid;
  app->nthreads = hello.nthreads;
  app->name.assign(hello.name,
                   strnlen(hello.name, sizeof(hello.name)));
  app->arena = arena;
  app->arena_fd = arena_fd;
  app->reattached = reattach;
  app->connected_at_us = now;

  HelloAck ack{};
  ack.update_period_us = period;
  ack.app_id = static_cast<int>(apps_.size());
  if (!send_msg(sock, MsgType::kHelloAck, cfg_.generation, &ack, sizeof(ack),
                arena_fd)) {
    arena_unmap(arena);
    ::close(arena_fd);
    ::close(sock);
    return;
  }

  std::lock_guard<std::mutex> lk(mu_);
  apps_.push_back(std::move(app));
}

bool ManagerServer::handle_client(std::size_t idx) {
  AppConn& app = *apps_[idx];
  MsgHeader hdr{};
  // Sized for the largest client payload so a well-formed frame of the
  // wrong *type* (e.g. a second kHello on an established connection) is
  // classified as a bad message rather than a truncated read.
  alignas(HelloMsg) unsigned char buf[kMaxClientPayload] = {};
  int stray_fd = -1;
  int unexpected = 0;
  const RecvStatus st =
      recv_msg(app.sock, hdr, buf, sizeof(buf), &stray_fd, &unexpected);
  if (stray_fd >= 0) {
    ::close(stray_fd);
    ++unexpected;
  }
  if (unexpected > 0) {
    count_fault(obs::FaultKind::kUnexpectedFd, app.manager_id,
                static_cast<double>(unexpected), monotonic_now_us());
  }
  if (st != RecvStatus::kOk ||
      hdr.type != static_cast<std::uint16_t>(MsgType::kReady) ||
      hdr.generation != cfg_.generation) {
    // EOF => plain disconnect. A corrupt frame, a frame started and then
    // stalled past SO_RCVTIMEO, a well-formed frame of an unexpected type,
    // or a Ready stamped with a previous manager generation (stale
    // pipeline from before a restart) is a protocol fault worth counting
    // before the drop.
    if (st == RecvStatus::kBad || st == RecvStatus::kTimeout ||
        (st == RecvStatus::kOk &&
         (hdr.type != static_cast<std::uint16_t>(MsgType::kReady) ||
          hdr.generation != cfg_.generation))) {
      count_fault(obs::FaultKind::kBadMessage, app.manager_id, 0.0,
                  monotonic_now_us());
    }
    return false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (!app.ready) {
    app.ready = true;
    const std::size_t pending_before = manager_.pending_restores();
    app.manager_id = manager_.connect(app.name, app.nthreads);
    const bool adopted = manager_.pending_restores() < pending_before;
    app.last_read = app.arena->transactions.load(std::memory_order_relaxed);
    // The app keeps running until the first election decides otherwise.
    if (app.reattached) {
      if (m_reattaches_ != nullptr) m_reattaches_->inc();
      if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
        cfg_.tracer->reattach(
            monotonic_now_us(),
            {app.manager_id, cfg_.generation,
             static_cast<std::uint8_t>(adopted ? 1 : 0)});
      }
    }
  }
  return true;
}

void ManagerServer::drop_client(std::size_t idx) {
  std::lock_guard<std::mutex> lk(mu_);
  drop_client_locked(idx);
}

void ManagerServer::drop_client_locked(std::size_t idx) {
  AppConn& app = *apps_[idx];
  // Defensive: if the process is still alive but blocked (e.g. it closed
  // the socket from an unmanaged thread), leave it runnable — a removed
  // application would otherwise stay suspended forever.
  if (app.blocked) set_blocked(app, false);
  if (app.manager_id >= 0) manager_.disconnect(app.manager_id);
  if (app.arena != nullptr) ::munmap(app.arena, sizeof(Arena));
  if (app.arena_fd >= 0) ::close(app.arena_fd);
  ::close(app.sock);
  apps_.erase(apps_.begin() + static_cast<std::ptrdiff_t>(idx));
}

void ManagerServer::reap_dead_locked(std::uint64_t now_us) {
  for (std::size_t i = apps_.size(); i-- > 0;) {
    if (!apps_[i]->dead) continue;
    count_fault(obs::FaultKind::kDeadLeader, apps_[i]->manager_id, 0.0,
                now_us);
    if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
      cfg_.tracer->job_state_change(
          now_us, {apps_[i]->manager_id, -1, obs::JobState::kManagerBlocked,
                   obs::JobState::kDisconnected});
    }
    drop_client_locked(i);
  }
}

void ManagerServer::sample_running(std::uint64_t now_us) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto& running = manager_.running();
  bool any_dead = false;
  for (auto& app : apps_) {
    if (app->manager_id < 0 || app->dead) continue;

    // Liveness: the client's updater bumps arena->heartbeats once per
    // update period — the same period that paces this sampler — and is not
    // signal-gated, so a healthy client makes progress between samples even
    // while blocked. No progress for several samples means the updater is
    // hung or the process is gone; probe the leader to tell which.
    const std::uint64_t hb =
        app->arena->heartbeats.load(std::memory_order_relaxed);
    if (hb != app->last_heartbeat) {
      app->last_heartbeat = hb;
      app->stall_intervals = 0;
    } else if (cfg_.heartbeat_stall_intervals > 0 &&
               ++app->stall_intervals >= cfg_.heartbeat_stall_intervals) {
      if (tgkill_portable(app->pid, app->leader_tid, 0) < 0 &&
          errno == ESRCH) {
        app->dead = true;
        any_dead = true;
        continue;
      }
      // Alive but silent: a hung updater. Report once per stall episode;
      // the manager's staleness policy owns the estimate from here.
      if (app->stall_intervals == cfg_.heartbeat_stall_intervals) {
        count_fault(obs::FaultKind::kStaleArena, app->manager_id,
                    static_cast<double>(app->stall_intervals), now_us);
      }
    }

    if (cfg_.heartbeat_stall_intervals > 0 &&
        app->stall_intervals >= cfg_.heartbeat_stall_intervals) {
      // A known-stale arena would post zero-deltas — a silent lie. Withhold
      // the sample instead, so the CpuManager's miss-streak ladder (hold →
      // decay → quarantine) takes over the estimate.
      continue;
    }

    if (std::find(running.begin(), running.end(), app->manager_id) ==
        running.end()) {
      continue;  // stats are only updated for running jobs
    }
    const std::uint64_t cum =
        app->arena->transactions.load(std::memory_order_relaxed);
    // Unsigned modular math: cum - last_read is the exact elapsed count
    // even across a legitimate u64 wrap of a long-lived counter (double
    // subtraction loses precision above 2^53 and would read a wrap as a
    // colossal negative delta, striking an honest app toward quarantine).
    // A scribbled-backwards counter instead lands in the top half of the
    // u64 range — a wrapped distance no physical bus could have carried.
    const std::uint64_t raw_delta = cum - app->last_read;
    const bool backwards = raw_delta > (std::uint64_t{1} << 63);
    const double delta = static_cast<double>(raw_delta);
    app->last_read = cum;

    // Feed validation at the trust boundary (docs/ROBUSTNESS.md §8): the
    // arena is writable by the application, so every value is hostile
    // until checked. Backwards counters and deltas no physical bus could
    // have carried are withheld from the estimator; repeat offenders are
    // classified adversarial, force-quarantined, and ignored for good.
    const double hostile_cap =
        cfg_.manager.staleness.max_sample_factor > 0
            ? cfg_.manager.staleness.max_sample_factor *
                  cfg_.manager.total_bus_bw_tps *
                  static_cast<double>(cfg_.manager.quantum_us)
            : 0.0;
    const bool hostile =
        backwards || (hostile_cap > 0.0 && delta > hostile_cap);
    if (app->adversarial) continue;  // feed written off; liveness only
    if (hostile) {
      count_fault(obs::FaultKind::kAdversarialFeed, app->manager_id, delta,
                  now_us);
      if (cfg_.adversarial_strikes > 0 &&
          ++app->strikes >= cfg_.adversarial_strikes) {
        app->adversarial = true;
        if (m_adv_quarantines_ != nullptr) m_adv_quarantines_->inc();
        manager_.quarantine(app->manager_id, now_us);
      }
      continue;  // never feed a hostile value into the estimator
    }

    manager_.record_sample(app->manager_id, delta, now_us);
    if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
      cfg_.tracer->counter_sample(
          now_us, {app->manager_id, delta,
                   manager_.policy_estimate(app->manager_id)});
    }
  }
  if (any_dead) reap_dead_locked(now_us);
}

void ManagerServer::quantum_boundary(std::uint64_t now_us) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::uint64_t election_t0 = monotonic_now_us();
  const core::ElectionResult& result =
      manager_.schedule_quantum(cfg_.nprocs, now_us);
  if (m_election_us_ != nullptr) {
    m_election_us_->observe(
        static_cast<double>(monotonic_now_us() - election_t0));
  }
  ++elections_;
  quantum_start_us_ = now_us;
  samples_taken_ = 0;

  bool any_dead = false;
  for (auto& app : apps_) {
    if (app->manager_id < 0 || app->dead) continue;
    const bool elected =
        std::find(result.elected.begin(), result.elected.end(),
                  app->manager_id) != result.elected.end();
    if (cfg_.tracer != nullptr && cfg_.tracer->enabled() &&
        app->blocked == elected) {  // state is about to flip
      cfg_.tracer->job_state_change(
          now_us,
          {app->manager_id, -1,
           elected ? obs::JobState::kManagerBlocked : obs::JobState::kReady,
           elected ? obs::JobState::kReady : obs::JobState::kManagerBlocked});
    }
    if (!set_blocked(*app, !elected)) {
      // ESRCH: the leader died since the last boundary. Reap below so the
      // next election redistributes its processors immediately.
      any_dead = true;
      continue;
    }
    if (elected) {
      // Fresh baseline so the first sample excludes older quanta.
      app->last_read =
          app->arena->transactions.load(std::memory_order_relaxed);
    }
  }
  if (any_dead) reap_dead_locked(now_us);

  // Journal on a bounded cadence: the snapshot trails live state by at most
  // journal_period_quanta elections. Append failure is advisory (counted,
  // never fatal) — losing the journal must not take the manager down.
  // ENOSPC degrade ladder (docs/ROBUSTNESS.md §9): a failed append first
  // tries the bounded rotation (compact to one record, reclaiming every
  // byte the journal holds); a streak of failures rotation cannot cure
  // trips journal-less mode — one typed event, the degraded gauge, and the
  // journal object dropped so no further quantum pays for doomed I/O.
  // Elections continue unaffected either way.
  if (journal_ != nullptr &&
      ++quanta_since_journal_ >= std::max(1, cfg_.journal_period_quanta)) {
    quanta_since_journal_ = 0;
    core::ManagerSnapshot snap;
    manager_.snapshot(snap);
    if (journal_->append(snap)) {
      journal_fail_streak_ = 0;
      if (m_journal_appends_ != nullptr) m_journal_appends_->inc();
    } else {
      if (m_journal_errors_ != nullptr) m_journal_errors_->inc();
      if (m_journal_rotations_ != nullptr) m_journal_rotations_->inc();
      if (journal_->rewrite(snap)) {
        journal_fail_streak_ = 0;  // rotation cured it; journaling continues
        if (m_journal_appends_ != nullptr) m_journal_appends_->inc();
      } else if (++journal_fail_streak_ >=
                 std::max(1, cfg_.journal_failure_limit)) {
        journal_.reset();
        journal_degraded_.store(true, std::memory_order_relaxed);
        count_fault(obs::FaultKind::kJournalDegraded, -1,
                    static_cast<double>(journal_fail_streak_), now_us);
      }
    }
  }

  // Mirror the installed injector's counters into gauges once per quantum,
  // so soaks read injection totals from the same registry as every other
  // instrument. No injector (the production state) leaves them at zero.
  if (m_sysfail_injected_ != nullptr) {
    if (const faults::SysFailInjector* inj = faults::sysfail()) {
      const faults::SysFailStats s = inj->stats();
      m_sysfail_injected_->set(static_cast<double>(s.injected));
      if (m_sysfail_clock_clamped_ != nullptr) {
        m_sysfail_clock_clamped_->set(static_cast<double>(s.clock_clamped));
      }
    }
  }
}

void ManagerServer::loop() {
  const std::uint64_t quantum = cfg_.manager.quantum_us;
  const int per_quantum = std::max(1, cfg_.manager.samples_per_quantum);
  const std::uint64_t sample_interval =
      quantum / static_cast<std::uint64_t>(per_quantum);

  for (;;) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (stopping_) return;
    }

    const std::uint64_t now = monotonic_now_us();
    std::uint64_t next_event;
    if (samples_taken_ + 1 < per_quantum) {
      next_event = quantum_start_us_ +
                   sample_interval *
                       static_cast<std::uint64_t>(samples_taken_ + 1);
    } else {
      next_event = quantum_start_us_ + quantum;
    }
    int timeout_ms =
        next_event > now
            ? static_cast<int>((next_event - now) / 1000 + 1)
            : 0;

    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    if (accept_retry_at_us_ > now) {
      // Accept backoff: a hard accept() failure (EMFILE/ENFILE) leaves the
      // listen fd permanently readable. Park it — poll ignores negative
      // fds — until the backoff expires, but wake no later than expiry so
      // a freed descriptor is picked up promptly.
      fds[0].fd = -1;
      const int backoff_ms =
          static_cast<int>((accept_retry_at_us_ - now) / 1000 + 1);
      if (backoff_ms < timeout_ms) timeout_ms = backoff_ms;
    }
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (const auto& app : apps_) fds.push_back({app->sock, POLLIN, 0});
    }

    const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) return;

    if (rc > 0) {
      if ((fds[1].revents & POLLIN) != 0) return;  // stop requested
      // Client messages / disconnects. fds[i+2] corresponds to apps_[i] at
      // poll time; handle back-to-front so erasures keep indices valid.
      // This runs *before* accept_connection(): admission may load-shed an
      // arbitrary apps_ entry and push a newcomer, which would shift every
      // index above the victim and re-point the old last slot at the new
      // socket — the poll-time mapping would then read (or drop) the wrong
      // app. The fd identity check guards the same invariant against any
      // future mid-round mutation.
      for (std::size_t i = fds.size(); i-- > 2;) {
        const std::size_t app_idx = i - 2;
        if (app_idx >= apps_.size() || apps_[app_idx]->sock != fds[i].fd) {
          continue;  // apps_ mutated since poll time; stale pollfd
        }
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        if ((fds[i].revents & POLLIN) != 0 && handle_client(app_idx)) {
          continue;
        }
        drop_client(app_idx);
      }
      if ((fds[0].revents & POLLIN) != 0) accept_connection();
    }

    const std::uint64_t after = monotonic_now_us();
    if (after >= quantum_start_us_ + quantum) {
      sample_running(after);
      quantum_boundary(after);
    } else if (samples_taken_ + 1 < per_quantum &&
               after >= quantum_start_us_ +
                            sample_interval *
                                static_cast<std::uint64_t>(samples_taken_ +
                                                           1)) {
      sample_running(after);
      ++samples_taken_;
    }
  }
}

std::uint64_t ManagerServer::elections() const {
  std::lock_guard<std::mutex> lk(mu_);
  return elections_;
}

std::size_t ManagerServer::connected_apps() const {
  std::lock_guard<std::mutex> lk(mu_);
  return apps_.size();
}

std::size_t ManagerServer::pending_restores() const {
  std::lock_guard<std::mutex> lk(mu_);
  return manager_.pending_restores();
}

std::vector<std::string> ManagerServer::running_app_names() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> names;
  for (const auto& app : apps_) {
    if (app->manager_id < 0) continue;
    const auto& running = manager_.running();
    if (std::find(running.begin(), running.end(), app->manager_id) !=
        running.end()) {
      names.push_back(app->name);
    }
  }
  return names;
}

std::vector<std::pair<std::string, double>> ManagerServer::estimates() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& app : apps_) {
    if (app->manager_id < 0) continue;
    out.emplace_back(app->name, manager_.policy_estimate(app->manager_id));
  }
  return out;
}

}  // namespace bbsched::runtime
