// The shared arena (paper §4): one shared-memory page per application, the
// primary communication medium between the CPU manager and the application.
//
// The application's runtime accumulates the bus-transaction counts of all
// its threads and writes the total into the arena at every update period
// (the manager asks for updates twice per scheduling quantum); the manager
// reads it at its sampling points. All fields are lock-free atomics — the
// two processes never block each other.
#pragma once

#include <atomic>
#include <cstdint>

namespace bbsched::runtime {

struct Arena {
  static constexpr std::uint32_t kMagic = 0x62627377;  // "bbsw"

  std::uint32_t magic = kMagic;

  /// Cumulative bus transactions of all application threads (written by the
  /// application, read by the manager).
  std::atomic<std::uint64_t> transactions{0};

  /// Update-sequence counter (bumped by the application each write, lets
  /// the manager detect a stalled updater).
  std::atomic<std::uint64_t> heartbeats{0};

  /// How often the application should refresh `transactions` (µs); written
  /// once by the manager at connection time ("it also informs the
  /// application how often the bus transaction rate information on the
  /// shared arena is expected to be updated").
  std::atomic<std::uint64_t> update_period_us{0};

  /// Worker threads registered so far (written by the application).
  std::atomic<std::uint32_t> threads_registered{0};
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "arena requires lock-free 64-bit atomics");

}  // namespace bbsched::runtime
