// The shared arena (paper §4): one shared-memory page per application, the
// primary communication medium between the CPU manager and the application.
//
// The application's runtime accumulates the bus-transaction counts of all
// its threads and writes the total into the arena at every update period
// (the manager asks for updates twice per scheduling quantum); the manager
// reads it at its sampling points. All fields are lock-free atomics — the
// two processes never block each other.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include "faults/sysfail.h"

namespace bbsched::runtime {

struct Arena {
  static constexpr std::uint32_t kMagic = 0x62627377;  // "bbsw"

  std::uint32_t magic = kMagic;

  /// Cumulative bus transactions of all application threads (written by the
  /// application, read by the manager).
  std::atomic<std::uint64_t> transactions{0};

  /// Update-sequence counter (bumped by the application each write, lets
  /// the manager detect a stalled updater).
  std::atomic<std::uint64_t> heartbeats{0};

  /// How often the application should refresh `transactions` (µs); written
  /// once by the manager at connection time ("it also informs the
  /// application how often the bus transaction rate information on the
  /// shared arena is expected to be updated").
  std::atomic<std::uint64_t> update_period_us{0};

  /// Worker threads registered so far (written by the application).
  std::atomic<std::uint32_t> threads_registered{0};
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "arena requires lock-free 64-bit atomics");

/// Creates the anonymous backing file for one arena, sized and sealed to
/// sizeof(Arena). Returns the fd, or -1 with errno set (ENOMEM/ENOSPC
/// class) — the caller refuses admission with a typed nack rather than
/// crashing. Routed through the sysfail shim so exhaustion is injectable.
inline int arena_create_fd() {
  const int fd = faults::sys::memfd_create("bbsched-arena", 0);
  if (fd < 0) return -1;
  if (faults::sys::ftruncate(fd, sizeof(Arena)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

/// Maps an arena fd into this process. Returns nullptr on failure (ENOMEM
/// under pressure) with errno set; never MAP_FAILED.
inline Arena* arena_map(int fd) {
  void* mem = faults::sys::mmap(nullptr, sizeof(Arena),
                                PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (mem == MAP_FAILED) return nullptr;
  return static_cast<Arena*>(mem);
}

inline void arena_unmap(Arena* arena) {
  if (arena != nullptr) ::munmap(arena, sizeof(Arena));
}

}  // namespace bbsched::runtime
