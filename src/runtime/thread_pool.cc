#include "runtime/thread_pool.h"

#include <cassert>

namespace bbsched::runtime {

int ThreadPool::hardware_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int workers) {
  if (workers <= 0) workers = hardware_workers();
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stopping_ && "submit after destruction began");
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      fn = std::move(queue_.front());
      queue_.pop_front();
    }
    // A task that throws would std::terminate here were it not for
    // packaged_task, which routes the exception into the future.
    fn();
  }
}

}  // namespace bbsched::runtime
