#include "runtime/protocol.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "faults/sysfail.h"

namespace bbsched::runtime {

namespace {

namespace sysio = bbsched::faults::sys;

/// After a short read mid-frame, decide between a truncated frame (peer
/// closed: the bytes will never come — corrupt) and a slow-loris stalling
/// past SO_RCVTIMEO (peer still open and silent — slow). A nonblocking
/// peek answers without consuming anything: EAGAIN means the connection is
/// alive but idle; EOF or an error means the frame is definitively cut.
RecvStatus classify_short_read(int sock) {
  char probe = 0;
  ssize_t n;
  for (;;) {
    n = sysio::recv(sock, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  const bool still_open =
      n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
  return still_open ? RecvStatus::kTimeout : RecvStatus::kBad;
}

}  // namespace

std::size_t expected_payload_len(std::uint16_t type) noexcept {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello:
    case MsgType::kReattach:
      return sizeof(HelloMsg);
    case MsgType::kHelloAck:
      return sizeof(HelloAck);
    case MsgType::kReady:
      return sizeof(ReadyMsg);
    case MsgType::kHelloNack:
      return sizeof(HelloNackMsg);
  }
  return static_cast<std::size_t>(-1);
}

const char* to_string(HelloNackReason reason) noexcept {
  switch (reason) {
    case HelloNackReason::kServerFull: return "server-full";
    case HelloNackReason::kInvalidHello: return "invalid-hello";
    case HelloNackReason::kRateLimited: return "rate-limited";
    case HelloNackReason::kResourceExhausted: return "resource-exhausted";
  }
  return "unknown";
}

bool send_msg(int sock, MsgType type, std::uint32_t generation,
              const void* payload, std::size_t payload_len, int fd) {
  MsgHeader hdr{};
  hdr.type = static_cast<std::uint16_t>(type);
  hdr.payload_len = static_cast<std::uint32_t>(payload_len);
  hdr.generation = generation;
  // The descriptor rides on the header write; the payload follows plain.
  if (fd >= 0) {
    if (!send_with_fd(sock, &hdr, sizeof(hdr), fd)) return false;
  } else {
    if (!send_all(sock, &hdr, sizeof(hdr))) return false;
  }
  return payload_len == 0 || send_all(sock, payload, payload_len);
}

RecvStatus recv_msg(int sock, MsgHeader& hdr, void* payload,
                    std::size_t payload_cap, int* fd_out,
                    int* unexpected_fds) {
  if (fd_out != nullptr) *fd_out = -1;

  // Distinguish a clean disconnect (EOF before any byte) from a truncated
  // header: peek at the first byte, then commit to the full read.
  char probe = 0;
  ssize_t n;
  for (;;) {
    n = sysio::recv(sock, &probe, 1, MSG_PEEK);
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  if (n == 0) return RecvStatus::kClosed;
  if (n < 0) {
    // SO_RCVTIMEO expiring before the first byte is a *slow* peer, not a
    // corrupt one — the caller may want to account them differently.
    return errno == EAGAIN || errno == EWOULDBLOCK ? RecvStatus::kTimeout
                                                   : RecvStatus::kBad;
  }

  if (!recv_with_fd(sock, &hdr, sizeof(hdr), fd_out, unexpected_fds)) {
    return classify_short_read(sock);
  }
  const bool hdr_ok =
      hdr.magic == kProtocolMagic && hdr.version == kProtocolVersion &&
      expected_payload_len(hdr.type) == hdr.payload_len &&
      hdr.payload_len <= payload_cap;
  if (hdr_ok && hdr.payload_len > 0 &&
      !recv_all(sock, payload, hdr.payload_len)) {
    // Never leak a descriptor that rode in on a frame we then rejected.
    if (fd_out != nullptr && *fd_out >= 0) {
      ::close(*fd_out);
      *fd_out = -1;
    }
    return classify_short_read(sock);
  }
  if (!hdr_ok) {
    if (fd_out != nullptr && *fd_out >= 0) {
      ::close(*fd_out);
      *fd_out = -1;
    }
    return RecvStatus::kBad;
  }
  return RecvStatus::kOk;
}

bool send_all(int sock, const void* bytes, std::size_t len) {
  const char* p = static_cast<const char*>(bytes);
  while (len > 0) {
    const ssize_t n = sysio::send(sock, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_all(int sock, void* bytes, std::size_t len) {
  char* p = static_cast<char*>(bytes);
  while (len > 0) {
    const ssize_t n = sysio::recv(sock, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool send_with_fd(int sock, const void* bytes, std::size_t len, int fd) {
  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int))] = {};

  const char* p = static_cast<const char*>(bytes);
  std::size_t left = len;
  // The descriptor rides the first transferred byte; once any prefix is on
  // the wire the kernel has queued the SCM_RIGHTS payload with it, and the
  // remainder resumes as plain sends. A short sendmsg (partial socket
  // buffer, injected short write) therefore never re-sends the descriptor
  // and never abandons the frame mid-way.
  bool fd_in_flight = fd >= 0;
  while (left > 0) {
    ssize_t n;
    if (fd_in_flight) {
      msghdr msg{};
      iovec iov{};
      iov.iov_base = const_cast<char*>(p);
      iov.iov_len = left;
      msg.msg_iov = &iov;
      msg.msg_iovlen = 1;
      msg.msg_control = control;
      msg.msg_controllen = sizeof(control);
      cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
      cmsg->cmsg_level = SOL_SOCKET;
      cmsg->cmsg_type = SCM_RIGHTS;
      cmsg->cmsg_len = CMSG_LEN(sizeof(int));
      std::memcpy(CMSG_DATA(cmsg), &fd, sizeof(int));
      n = sysio::sendmsg(sock, &msg, MSG_NOSIGNAL);
    } else {
      n = sysio::send(sock, p, left, MSG_NOSIGNAL);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    fd_in_flight = false;
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_with_fd(int sock, void* bytes, std::size_t len, int* fd_out,
                  int* unexpected_fds) {
  if (fd_out != nullptr) *fd_out = -1;

  // Room for a batch of descriptors per receive round: a hostile peer may
  // cram several into one SCM_RIGHTS cmsg (or several cmsgs). Whatever
  // fits is received and drained below; whatever does not fit is closed by
  // the kernel (the message is flagged MSG_CTRUNC) — either way nothing
  // leaks into our fd table.
  constexpr int kMaxAncillaryFds = 8;

  char* p = static_cast<char*>(bytes);
  std::size_t left = len;
  int got_fd = -1;
  int extra = 0;
  bool ok = true;
  // Resume loop: MSG_WAITALL still returns short when SO_RCVTIMEO expires
  // with a partial frame in hand or a signal lands mid-copy — and the
  // injector clamps transfers on purpose. A short round keeps its bytes
  // and its ancillary payload (descriptors attach to the first byte of the
  // segment they rode in on); the next round reads the remainder from the
  // resume offset instead of reclassifying the frame as corrupt.
  while (left > 0) {
    msghdr msg{};
    iovec iov{};
    iov.iov_base = p;
    iov.iov_len = left;
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(cmsghdr) char control[CMSG_SPACE(kMaxAncillaryFds * sizeof(int))] =
        {};
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);

    const ssize_t n = sysio::recvmsg(sock, &msg, MSG_WAITALL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // Hard error, timeout with zero progress this round, or EOF: the
      // remainder of the frame is not coming. The caller classifies.
      ok = false;
      break;
    }

    // Drain every descriptor this round installed, wanted or not — a
    // truncated frame still delivers its ancillary payload, and rejecting
    // the frame must not leak it.
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level != SOL_SOCKET || cmsg->cmsg_type != SCM_RIGHTS) {
        continue;
      }
      const std::size_t data_len =
          cmsg->cmsg_len - static_cast<std::size_t>(CMSG_LEN(0));
      const std::size_t nfds = data_len / sizeof(int);
      for (std::size_t i = 0; i < nfds; ++i) {
        int cfd = -1;
        std::memcpy(&cfd, CMSG_DATA(cmsg) + i * sizeof(int), sizeof(int));
        if (cfd < 0) continue;
        if (got_fd < 0 && fd_out != nullptr) {
          got_fd = cfd;
        } else {
          ::close(cfd);
          ++extra;
        }
      }
    }

    p += n;
    left -= static_cast<std::size_t>(n);
  }

  if (ok) {
    if (fd_out != nullptr) *fd_out = got_fd;
  } else if (got_fd >= 0) {
    // Failure path keeps the pre-resume contract: a descriptor that rode
    // in on a frame we could not complete is closed and counted, never
    // handed to the caller.
    ::close(got_fd);
    ++extra;
  }
  if (unexpected_fds != nullptr) *unexpected_fds += extra;
  return ok;
}

}  // namespace bbsched::runtime
