#include "runtime/protocol.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace bbsched::runtime {

bool send_all(int sock, const void* bytes, std::size_t len) {
  const char* p = static_cast<const char*>(bytes);
  while (len > 0) {
    const ssize_t n = ::send(sock, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool recv_all(int sock, void* bytes, std::size_t len) {
  char* p = static_cast<char*>(bytes);
  while (len > 0) {
    const ssize_t n = ::recv(sock, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool send_with_fd(int sock, const void* bytes, std::size_t len, int fd) {
  msghdr msg{};
  iovec iov{};
  iov.iov_base = const_cast<void*>(bytes);
  iov.iov_len = len;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;

  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int))] = {};
  if (fd >= 0) {
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);
    cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(sizeof(int));
    std::memcpy(CMSG_DATA(cmsg), &fd, sizeof(int));
  }

  for (;;) {
    const ssize_t n = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    return n == static_cast<ssize_t>(len);
  }
}

bool recv_with_fd(int sock, void* bytes, std::size_t len, int* fd_out) {
  if (fd_out != nullptr) *fd_out = -1;

  msghdr msg{};
  iovec iov{};
  iov.iov_base = bytes;
  iov.iov_len = len;
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;

  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int))] = {};
  msg.msg_control = control;
  msg.msg_controllen = sizeof(control);

  ssize_t n;
  for (;;) {
    n = ::recvmsg(sock, &msg, MSG_WAITALL);
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  if (n != static_cast<ssize_t>(len)) return false;

  if (fd_out != nullptr) {
    for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
         cmsg = CMSG_NXTHDR(&msg, cmsg)) {
      if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS) {
        std::memcpy(fd_out, CMSG_DATA(cmsg), sizeof(int));
        break;
      }
    }
  }
  return true;
}

}  // namespace bbsched::runtime
