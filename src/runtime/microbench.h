// Native memory microbenchmarks (paper §3), instrumented for the software
// counter registry.
//
// BBMA ("Bus Bandwidth Microbenchmark Application"): walks a 2-dimensional
// array twice the size of the L2 cache COLUMN-wise while the array is stored
// row-wise — every write touches a different cache line, the line is evicted
// before its next element is needed, hit rate ~0%, each access is a bus
// transaction.
//
// nBBMA: walks an array half the L2 size ROW-wise — perfect spatial
// locality, the working set stays resident, hit rate ~100%, essentially no
// bus traffic after the compulsory misses.
//
// Both kernels credit their actual memory traffic to a counter slot so the
// CPU manager can observe them exactly as hardware counters would.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bbsched::runtime {

struct MicrobenchConfig {
  std::size_t l2_bytes = 256 * 1024;  ///< modelled L2 size (Xeon: 256 KB)
  std::size_t line_bytes = 64;        ///< cache line (= bytes/transaction)
};

/// One pass statistics returned by the kernels.
struct KernelStats {
  std::uint64_t iterations = 0;       ///< full array sweeps
  std::uint64_t transactions = 0;     ///< bus transactions credited
  double checksum = 0.0;              ///< defeats dead-code elimination
};

/// Runs the BBMA kernel until `*stop` becomes true, crediting transactions
/// to `counter_slot` (pass -1 to skip crediting). Returns pass statistics.
KernelStats run_bbma(const std::atomic<bool>& stop, int counter_slot,
                     const MicrobenchConfig& cfg = {});

/// Runs the nBBMA kernel until `*stop` becomes true.
KernelStats run_nbbma(const std::atomic<bool>& stop, int counter_slot,
                      const MicrobenchConfig& cfg = {});

/// A compute-bound kernel with a tunable trickle of memory traffic; used by
/// examples as a stand-in for a real application thread. `target_tps` is
/// the approximate bus-transaction rate to emulate (transactions/µs) and is
/// credited (not necessarily physically generated) — useful on machines
/// whose memory system differs from the paper's.
KernelStats run_synthetic(const std::atomic<bool>& stop, int counter_slot,
                          double target_tps,
                          const MicrobenchConfig& cfg = {});

}  // namespace bbsched::runtime
