// Wire protocol between applications and the CPU manager: framed binary
// messages over a UNIX-domain stream socket. The arena file descriptor
// travels back to the application as SCM_RIGHTS ancillary data, so no
// filesystem-visible shm names are needed and cleanup is automatic.
//
// Protocol v2 frames every message:
//
//   [MsgHeader: magic | version | type | payload_len | generation] [payload]
//
// The header is validated before a single payload byte is trusted: wrong
// magic, unknown version, unknown type, or a payload length that does not
// match the type's fixed payload size all classify the datagram as
// *corrupt* (RecvStatus::kBad) rather than as a clean disconnect — the
// manager counts these as server.faults.bad_message and drops the peer.
//
// `generation` is the manager's restart epoch, assigned by the supervisor
// (src/runtime/supervisor.h). Clients learn it from HelloAck and echo it on
// every subsequent message; after a crash+restart the new manager carries a
// higher generation, so a stale in-flight message from the previous epoch
// is rejected instead of silently acted upon. kHello/kReattach are exempt
// (they carry the client's *last known* generation, which is how a
// reattaching client and the new manager resynchronise).
#pragma once

#include <cstdint>
#include <sys/types.h>

namespace bbsched::runtime {

inline constexpr std::uint32_t kProtocolMagic = 0x62627332;  // "bbs2"
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::size_t kMaxAppName = 48;

enum class MsgType : std::uint16_t {
  kHello = 1,     ///< app -> manager: first-time connection request
  kHelloAck = 2,  ///< manager -> app: accepted (+ arena fd via SCM_RIGHTS)
  kReady = 3,     ///< app -> manager: all workers registered; blockable
  kReattach = 4,  ///< app -> manager: reconnect after a manager restart
  kHelloNack = 5, ///< manager -> app: admission refused (typed reason)
};

struct MsgHeader {
  std::uint32_t magic = kProtocolMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t type = 0;           ///< MsgType
  std::uint32_t payload_len = 0;    ///< bytes following the header
  std::uint32_t generation = 0;     ///< manager restart epoch
};

/// Payload of kHello and kReattach (a reattach is a hello that asks the
/// manager to adopt journaled feed state instead of cold-starting the feed).
struct HelloMsg {
  std::int32_t pid = 0;         ///< application process id
  std::int32_t leader_tid = 0;  ///< kernel tid that receives manager signals
  std::int32_t nthreads = 1;    ///< worker threads the app will register
  char name[kMaxAppName] = {};
};

/// Payload of kHelloAck. The header's `generation` tells the client which
/// manager epoch it is now attached to.
struct HelloAck {
  std::uint64_t update_period_us = 0;  ///< requested arena refresh period
  std::int32_t app_id = -1;
};

/// Payload of kReady.
struct ReadyMsg {
  std::int32_t app_id = -1;
};

/// Why the manager refused an admission request (payload of kHelloNack).
/// Typed so a rejected client can distinguish "come back later" (overload,
/// rate limit) from "your request is broken" (invalid hello) — and so tests
/// can assert every hostile input lands in a *specific* rejection class.
enum class HelloNackReason : std::int32_t {
  kServerFull = 1,   ///< max_clients reached and nothing sheddable
  kInvalidHello = 2, ///< hello failed field validation (trust boundary)
  kRateLimited = 3,  ///< per-peer handshake-attempt budget exceeded
  kResourceExhausted = 4, ///< arena create/map failed (ENOMEM/ENOSPC class);
                          ///< transient on the manager's side — retry later
};

[[nodiscard]] const char* to_string(HelloNackReason reason) noexcept;

/// Payload of kHelloNack. Admission stays protocol-v2 wire compatible:
/// accepted clients see exactly the pre-hardening byte stream; only a
/// rejected client — which previously saw an unexplained close — receives
/// this frame before the manager drops the connection.
struct HelloNackMsg {
  std::int32_t reason = 0;          ///< HelloNackReason
  std::uint32_t retry_after_ms = 0; ///< backoff hint; 0 = do not retry
};

/// Expected payload size for `type`, or SIZE_MAX for an unknown type.
[[nodiscard]] std::size_t expected_payload_len(std::uint16_t type) noexcept;

enum class RecvStatus {
  kOk,       ///< header + payload received and validated
  kClosed,   ///< clean EOF before any header byte (peer disconnected)
  kTimeout,  ///< SO_RCVTIMEO expired before any header byte arrived
  kBad,      ///< corrupt/truncated frame: bad magic, version, type,
             ///< mismatched payload length, or a short read mid-message
};

/// Sends one framed message (header + payload), optionally attaching a file
/// descriptor as SCM_RIGHTS ancillary data on the header write.
/// Returns false on error. Retries EINTR.
bool send_msg(int sock, MsgType type, std::uint32_t generation,
              const void* payload, std::size_t payload_len, int fd = -1);

/// Receives and validates one framed message. `payload_cap` is the caller's
/// buffer size; the frame is rejected (kBad) if the declared payload does
/// not match expected_payload_len() or exceeds the buffer. If the peer
/// attached a descriptor it is stored in *fd_out (otherwise -1). Ancillary
/// descriptors beyond what the caller asked for are drained and closed, and
/// their count added to *unexpected_fds (never leaked into the receiver's
/// fd table — a hostile client must not be able to exhaust it with
/// SCM_RIGHTS spam).
RecvStatus recv_msg(int sock, MsgHeader& hdr, void* payload,
                    std::size_t payload_cap, int* fd_out = nullptr,
                    int* unexpected_fds = nullptr);

/// Sends `bytes` with an optional file descriptor as ancillary data.
/// Returns false on error. Retries EINTR; a partial sendmsg/send resumes
/// from the offset (the descriptor rides the first transferred byte and is
/// never re-sent on resume).
bool send_with_fd(int sock, const void* bytes, std::size_t len, int fd);

/// Receives exactly `len` bytes; if the peer attached a descriptor it is
/// stored in *fd_out (otherwise -1). Returns false on error / EOF.
/// A short recvmsg (signal mid-copy, SO_RCVTIMEO with partial progress,
/// injected short read) resumes from the offset rather than failing the
/// frame; descriptors received in any round are kept across the resume.
/// Every ancillary descriptor the kernel delivered beyond the one the
/// caller wanted (fd_out == nullptr means *none* were wanted) is closed
/// immediately and counted into *unexpected_fds when provided.
bool recv_with_fd(int sock, void* bytes, std::size_t len, int* fd_out,
                  int* unexpected_fds = nullptr);

/// Plain full-buffer send/recv with EINTR retry and partial-transfer
/// resume from the offset.
bool send_all(int sock, const void* bytes, std::size_t len);
bool recv_all(int sock, void* bytes, std::size_t len);

}  // namespace bbsched::runtime
