// Wire protocol between applications and the CPU manager: fixed-size binary
// messages over a UNIX-domain stream socket. The arena file descriptor
// travels back to the application as SCM_RIGHTS ancillary data, so no
// filesystem-visible shm names are needed and cleanup is automatic.
#pragma once

#include <cstdint>
#include <sys/types.h>

namespace bbsched::runtime {

inline constexpr std::uint32_t kProtocolMagic = 0x62627331;  // "bbs1"
inline constexpr std::size_t kMaxAppName = 48;

/// Application -> manager: connection request.
struct HelloMsg {
  std::uint32_t magic = kProtocolMagic;
  std::int32_t pid = 0;         ///< application process id
  std::int32_t leader_tid = 0;  ///< kernel tid that receives manager signals
  std::int32_t nthreads = 1;    ///< worker threads the app will register
  char name[kMaxAppName] = {};
};

/// Manager -> application: connection accepted (+ arena fd via SCM_RIGHTS).
struct HelloAck {
  std::uint32_t magic = kProtocolMagic;
  std::uint64_t update_period_us = 0;  ///< requested arena refresh period
  std::int32_t app_id = -1;
};

/// Application -> manager: all worker threads registered; the application
/// is now safely blockable (every thread will see forwarded signals).
struct ReadyMsg {
  std::uint32_t magic = kProtocolMagic;
  std::int32_t app_id = -1;
};

/// Sends `bytes` with an optional file descriptor as ancillary data.
/// Returns false on error. Retries EINTR.
bool send_with_fd(int sock, const void* bytes, std::size_t len, int fd);

/// Receives exactly `len` bytes; if the peer attached a descriptor it is
/// stored in *fd_out (otherwise -1). Returns false on error / EOF.
bool recv_with_fd(int sock, void* bytes, std::size_t len, int* fd_out);

/// Plain full-buffer send/recv with EINTR retry.
bool send_all(int sock, const void* bytes, std::size_t len);
bool recv_all(int sock, void* bytes, std::size_t len);

}  // namespace bbsched::runtime
