// Supervised manager restart (docs/ROBUSTNESS.md §7).
//
// The CPU manager is a single point of failure: when it dies, every gated
// application free-runs (the client releases its signal gate on socket
// EOF) but nobody runs elections anymore. The Supervisor closes that gap:
// it forks the manager into a child process, babysits it, and restarts it
// when it crashes or hangs —
//
//   * crash  — the child exits abnormally (SIGKILL, abort, nonzero exit);
//     waitpid() reports it and the supervisor restarts after a jittered
//     exponential backoff.
//   * hang   — the child heartbeats the supervisor over a pipe once per
//     heartbeat_period_us; a SIGSTOPped or livelocked child misses
//     heartbeats, and after heartbeat_miss_limit misses the watchdog
//     SIGKILLs it and takes the crash path.
//   * storm  — a circuit breaker counts restarts inside a sliding window;
//     exceeding max_restarts trips it permanently (gave_up()): the manager
//     stays down and the applications keep free-running under the kernel
//     scheduler, which is the documented degraded mode.
//
// Each (re)start gets a fresh generation number, stamped into the child's
// ServerConfig and therefore into every protocol frame — reattaching
// clients learn it from HelloAck, and stale messages from a previous
// generation are rejected. With `server.journal_path` set, each generation
// restores its predecessor's learned state from the journal.
//
// Clean shutdown: stop() SIGTERMs the child, which stops its ManagerServer
// and exits 0; a zero exit status is never restarted.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "runtime/manager_server.h"
#include "stats/rng.h"

namespace bbsched::runtime {

struct SupervisorConfig {
  /// Configuration for every managed child. `generation` is overwritten
  /// per restart; set `journal_path` to carry state across generations.
  ServerConfig server{};

  // ---- restart backoff (jittered exponential) ----
  std::uint64_t initial_backoff_us = 50'000;
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_us = 2'000'000;
  /// Relative jitter: each sleep is backoff * (1 ± jitter/2).
  double jitter = 0.5;
  std::uint64_t seed = 0xba5eba11ULL;  ///< jitter stream seed

  // ---- circuit breaker ----
  /// Restarts tolerated inside `breaker_window_us` before the supervisor
  /// gives up permanently (free-run forever). <= 0 disables the breaker.
  int max_restarts = 8;
  std::uint64_t breaker_window_us = 30'000'000;

  // ---- hang watchdog ----
  /// Child heartbeat period; the child writes one byte per period.
  std::uint64_t heartbeat_period_us = 50'000;
  /// Consecutive missed heartbeat periods before the child is declared
  /// hung and SIGKILLed. <= 0 disables the watchdog.
  int heartbeat_miss_limit = 20;

  /// Parent-side observability (non-owning). The monitor thread is the
  /// only writer of this tracer — do not share it with an in-process
  /// ManagerServer.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class Supervisor {
 public:
  explicit Supervisor(const SupervisorConfig& cfg);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Forks generation 1 and starts the monitor thread. False if the first
  /// child could not be spawned.
  bool start();

  /// SIGTERMs the child (clean exit, no restart) and joins the monitor.
  /// Idempotent.
  void stop();

  // ---- introspection ----
  /// Generation of the most recently spawned child (1-based; 0 = never).
  [[nodiscard]] std::uint32_t generation() const noexcept {
    return generation_.load(std::memory_order_relaxed);
  }
  /// Restarts performed so far (first start excluded).
  [[nodiscard]] int restarts() const noexcept {
    return restarts_.load(std::memory_order_relaxed);
  }
  /// True once the circuit breaker tripped: the manager stays down.
  [[nodiscard]] bool gave_up() const noexcept {
    return gave_up_.load(std::memory_order_relaxed);
  }
  /// Pid of the current child; -1 when none is running.
  [[nodiscard]] pid_t child_pid() const noexcept {
    return child_pid_.load(std::memory_order_relaxed);
  }
  /// Failed fork() attempts during respawns. Each one pays a full backoff
  /// step and counts toward the circuit breaker, exactly like a crashed
  /// child — the respawn path never busy-loops on a fork that keeps
  /// failing (docs/ROBUSTNESS.md §9).
  [[nodiscard]] int fork_failures() const noexcept {
    return fork_failures_.load(std::memory_order_relaxed);
  }
  /// True while the current child reports journal-less operation via its
  /// heartbeat ('d' beats): the next restart will cold-start.
  [[nodiscard]] bool child_journal_degraded() const noexcept {
    return child_degraded_.load(std::memory_order_relaxed);
  }
  /// True while the monitor thread is running (manager alive or between
  /// restarts); false after stop() or after the breaker tripped.
  [[nodiscard]] bool supervising() const noexcept {
    return supervising_.load(std::memory_order_relaxed);
  }

  /// Sends `sig` to the current child (chaos hook: SIGKILL, SIGSTOP,
  /// SIGCONT). False when no child is running or kill() failed.
  bool kill_child(int sig) const;

 private:
  /// Forks one manager child; fills child_pid_ / heartbeat fd. False if
  /// fork failed.
  bool spawn_child();
  void monitor_loop();
  /// Jittered-backoff sleep between restarts; false when stop() interrupted
  /// it.
  bool backoff_sleep();
  /// True when one more restart stays within the breaker budget.
  bool breaker_allows(std::uint64_t now_us);
  void close_heartbeat();

  SupervisorConfig cfg_;
  stats::Rng rng_;
  std::uint64_t backoff_us_;

  std::thread monitor_;
  std::atomic<pid_t> child_pid_{-1};
  std::atomic<std::uint32_t> generation_{0};
  std::atomic<int> restarts_{0};
  std::atomic<bool> gave_up_{false};
  std::atomic<bool> supervising_{false};
  std::atomic<int> fork_failures_{0};      ///< failed respawn fork() calls
  std::atomic<bool> child_degraded_{false}; ///< child heartbeats 'd'
  int heartbeat_fd_ = -1;  ///< read end; child owns the write end

  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::deque<std::uint64_t> restart_times_us_;  ///< breaker window

  obs::Counter* m_restarts_ = nullptr;
  obs::Counter* m_watchdog_kills_ = nullptr;
  obs::Gauge* m_gave_up_ = nullptr;
  obs::Counter* m_fork_failures_ = nullptr;  ///< .recovery.fork_failures
  obs::Gauge* m_child_degraded_ = nullptr;   ///< .child_journal_degraded
};

}  // namespace bbsched::runtime
