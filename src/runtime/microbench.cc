#include "runtime/microbench.h"

#include <chrono>

#include "perfctr/software_counters.h"

namespace bbsched::runtime {

namespace {

void credit(int slot, std::uint64_t n) {
  if (slot >= 0) perfctr::global_counters().add(slot, n);
}

}  // namespace

KernelStats run_bbma(const std::atomic<bool>& stop, int counter_slot,
                     const MicrobenchConfig& cfg) {
  KernelStats out;
  // Array of 2x the L2 size, rows of one cache line each, stored row-wise.
  const std::size_t rows = (2 * cfg.l2_bytes) / cfg.line_bytes;
  const std::size_t cols = cfg.line_bytes;  // one char per line element
  std::vector<unsigned char> array(rows * cols, 1);

  while (!stop.load(std::memory_order_relaxed)) {
    // Column-wise writes: first element of every line, then the second, ...
    // By the time a line's next element is written the line has been
    // evicted, so every write is a miss.
    for (std::size_t c = 0; c < cols && !stop.load(std::memory_order_relaxed);
         ++c) {
      for (std::size_t r = 0; r < rows; ++r) {
        array[r * cols + c] = static_cast<unsigned char>(r + c);
      }
      // Every write missed: one transaction per (row, column) visit.
      credit(counter_slot, rows);
      out.transactions += rows;
    }
    ++out.iterations;
  }
  out.checksum = static_cast<double>(array[rows / 2 * cols + cols / 2]);
  return out;
}

KernelStats run_nbbma(const std::atomic<bool>& stop, int counter_slot,
                      const MicrobenchConfig& cfg) {
  KernelStats out;
  // Half the L2, walked row-wise: resident after the compulsory misses.
  const std::size_t bytes = cfg.l2_bytes / 2;
  std::vector<unsigned char> array(bytes, 1);

  // Compulsory misses: one per line while the working set loads.
  credit(counter_slot, bytes / cfg.line_bytes);
  out.transactions += bytes / cfg.line_bytes;

  unsigned acc = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    for (std::size_t i = 0; i < bytes; ++i) acc += array[i];
    ++out.iterations;
    // ~100% hit rate: virtually no bus traffic is credited.
  }
  out.checksum = static_cast<double>(acc);
  return out;
}

KernelStats run_synthetic(const std::atomic<bool>& stop, int counter_slot,
                          double target_tps, const MicrobenchConfig& cfg) {
  KernelStats out;
  const std::size_t lines = cfg.l2_bytes / cfg.line_bytes;
  std::vector<unsigned char> array(cfg.l2_bytes, 1);
  unsigned acc = 0;

  using clock = std::chrono::steady_clock;
  auto last = clock::now();
  while (!stop.load(std::memory_order_relaxed)) {
    // A slice of compute over a cache-resident array...
    for (std::size_t i = 0; i < lines; ++i) {
      acc += array[i * cfg.line_bytes];
    }
    ++out.iterations;
    // ...credited with the bus traffic the emulated application would have
    // produced over the elapsed wall time.
    const auto now = clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(now - last).count();
    last = now;
    const auto tx = static_cast<std::uint64_t>(us * target_tps);
    credit(counter_slot, tx);
    out.transactions += tx;
  }
  out.checksum = static_cast<double>(acc);
  return out;
}

}  // namespace bbsched::runtime
