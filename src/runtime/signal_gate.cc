#include "runtime/signal_gate.h"

#include <cassert>
#include <cstring>
#include <sys/syscall.h>
#include <unistd.h>

namespace bbsched::runtime {

namespace {
/// Slot of the calling thread; -1 until registered.
thread_local int t_slot = -1;

pid_t gettid_portable() {
  return static_cast<pid_t>(::syscall(SYS_gettid));
}
}  // namespace

// bbsched:signal called from both handlers
SignalGate& SignalGate::instance() {
  static SignalGate gate;
  return gate;
}

void SignalGate::install() {
  bool expected = false;
  if (!installed_.compare_exchange_strong(expected, true)) return;

  struct sigaction sa{};
  sa.sa_handler = &SignalGate::handle_block;
  sigemptyset(&sa.sa_mask);
  // Keep the unblock signal deliverable while the block handler runs so the
  // suspension loop can be woken.
  sa.sa_flags = SA_RESTART;
  const int rc1 = sigaction(kBlockSignal, &sa, nullptr);
  assert(rc1 == 0);
  (void)rc1;

  sa.sa_handler = &SignalGate::handle_unblock;
  const int rc2 = sigaction(kUnblockSignal, &sa, nullptr);
  assert(rc2 == 0);
  (void)rc2;
}

int SignalGate::register_current_thread() {
  install();
  const int slot = nthreads_.fetch_add(1, std::memory_order_acq_rel);
  assert(slot < kMaxThreads && "signal gate slot table exhausted");
  handles_[slot] = pthread_self();
  blocks_[slot].store(0, std::memory_order_relaxed);
  unblocks_[slot].store(0, std::memory_order_relaxed);
  suspended_[slot].store(false, std::memory_order_relaxed);
  active_[slot].store(true, std::memory_order_release);
  t_slot = slot;
  if (slot == 0) {
    leader_tid_.store(gettid_portable(), std::memory_order_release);
  }
  return slot;
}

void SignalGate::unregister_current_thread() {
  if (t_slot >= 0) {
    active_[t_slot].store(false, std::memory_order_release);
    t_slot = -1;
  }
}

// bbsched:signal reads only a thread_local
int SignalGate::slot_of_self() const { return t_slot; }

// bbsched:signal leader's handler fans intents out to the other threads
void SignalGate::forward(int signo) {
  // Called from the leader's handler: fan the intent out to every other
  // registered thread. pthread_kill is async-signal-safe.
  const int n = nthreads_.load(std::memory_order_acquire);
  for (int s = 1; s < n; ++s) {
    if (active_[s].load(std::memory_order_acquire)) {
      pthread_kill(handles_[s], signo);
    }
  }
}

// bbsched:signal installed as the SIGUSR1 (block) handler
void SignalGate::handle_block(int /*signo*/) {
  const int saved_errno = errno;
  instance().on_block();
  errno = saved_errno;
}

// bbsched:signal installed as the SIGUSR2 (unblock) handler
void SignalGate::handle_unblock(int /*signo*/) {
  const int saved_errno = errno;
  instance().on_unblock();
  errno = saved_errno;
}

// bbsched:signal the suspension loop, runs entirely in handler context
void SignalGate::on_block() {
  const int slot = slot_of_self();
  if (slot < 0) return;  // unregistered thread (e.g. the arena updater)
  if (released_.load(std::memory_order_relaxed)) return;  // free-run mode
  if (slot == 0) forward(kBlockSignal);

  blocks_[slot].fetch_add(1, std::memory_order_relaxed);

  // The paper's counting rule: suspend only while blocks exceed unblocks,
  // tolerating inverted delivery of consecutive block/unblock intents. A
  // release (manager died) also ends the suspension: the releasing thread
  // wakes us with an unblock signal and the flag breaks the loop.
  sigset_t wait_mask;
  pthread_sigmask(SIG_BLOCK, nullptr, &wait_mask);
  sigdelset(&wait_mask, kUnblockSignal);

  while (!released_.load(std::memory_order_relaxed) &&
         blocks_[slot].load(std::memory_order_relaxed) >
             unblocks_[slot].load(std::memory_order_relaxed)) {
    suspended_[slot].store(true, std::memory_order_relaxed);
    sigsuspend(&wait_mask);  // returns after the unblock handler ran
  }
  suspended_[slot].store(false, std::memory_order_relaxed);
}

// bbsched:signal runs in handler context
void SignalGate::on_unblock() {
  const int slot = slot_of_self();
  if (slot < 0) return;
  if (slot == 0) forward(kUnblockSignal);
  unblocks_[slot].fetch_add(1, std::memory_order_relaxed);
}

void SignalGate::signal_slot(int slot, int signo) {
  assert(slot >= 0 && slot < nthreads_.load(std::memory_order_acquire));
  assert(active_[slot].load(std::memory_order_acquire));
  pthread_kill(handles_[slot], signo);
}

void SignalGate::release_all() {
  released_.store(true, std::memory_order_release);
  // Wake every registered thread: a suspended one re-checks the loop
  // condition (the flag now breaks it); a running one takes a harmless
  // unblock (extra unblocks never suspend anyone under the counting rule).
  const int n = nthreads_.load(std::memory_order_acquire);
  for (int s = 0; s < n; ++s) {
    if (active_[s].load(std::memory_order_acquire)) {
      pthread_kill(handles_[s], kUnblockSignal);
    }
  }
}

void SignalGate::rearm() {
  // Square the counts so history from the dead manager cannot re-suspend
  // (or permanently unblock) anyone under the new one.
  const int n = nthreads_.load(std::memory_order_acquire);
  for (int s = 0; s < n; ++s) {
    unblocks_[s].store(blocks_[s].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
  released_.store(false, std::memory_order_release);
}

void SignalGate::reset_for_tests() {
  const int n = nthreads_.load(std::memory_order_acquire);
  for (int s = 0; s < n; ++s) {
    assert(!suspended_[s].load(std::memory_order_relaxed) &&
           "cannot reset the gate while a thread is suspended");
    active_[s].store(false, std::memory_order_relaxed);
    blocks_[s].store(0, std::memory_order_relaxed);
    unblocks_[s].store(0, std::memory_order_relaxed);
  }
  nthreads_.store(0, std::memory_order_release);
  leader_tid_.store(0, std::memory_order_release);
  released_.store(false, std::memory_order_release);
  t_slot = -1;
}

}  // namespace bbsched::runtime
