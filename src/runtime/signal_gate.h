// Block / unblock of application threads via standard UNIX signals, exactly
// as the paper's CPU manager does it (§4):
//
//  * the manager sends SIGUSR1 (block) or SIGUSR2 (unblock) to ONE
//    application thread (the leader); the leader's handler forwards the
//    signal to the rest of the registered threads;
//  * a thread suspends only while (received blocks) > (received unblocks) —
//    the paper's counting rule that tolerates inversion of block/unblock
//    delivery when quanta are short;
//  * suspension happens inside the signal handler via sigsuspend with the
//    unblock signal unmasked, so an unblock always wakes the thread and the
//    condition is re-checked.
//
// Everything touched from handlers is a lock-free atomic or an
// async-signal-safe call (pthread_kill, sigsuspend).
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <pthread.h>

namespace bbsched::runtime {

inline constexpr int kBlockSignal = SIGUSR1;
inline constexpr int kUnblockSignal = SIGUSR2;

/// Process-wide gate. Intended use: SignalGate::instance().install() once,
/// then each worker thread calls register_current_thread(); the first
/// registered thread is the leader.
class SignalGate {
 public:
  static constexpr int kMaxThreads = 128;

  static SignalGate& instance();

  /// Installs the SIGUSR1/SIGUSR2 handlers (idempotent).
  void install();

  /// Registers the calling thread; returns its slot. The first registered
  /// thread becomes the leader (signal forwarding fan-out point).
  int register_current_thread();

  /// Removes the calling thread from forwarding (on worker exit).
  void unregister_current_thread();

  /// Blocks received minus unblocks received for `slot` (tests/diagnostics).
  [[nodiscard]] int pending_blocks(int slot) const {
    return blocks_[slot].load(std::memory_order_relaxed) -
           unblocks_[slot].load(std::memory_order_relaxed);
  }

  /// True while the thread owning `slot` is suspended in the handler.
  [[nodiscard]] bool is_suspended(int slot) const {
    return suspended_[slot].load(std::memory_order_relaxed);
  }

  [[nodiscard]] int registered() const {
    return nthreads_.load(std::memory_order_relaxed);
  }

  /// Kernel tid of the leader (what the manager should signal), or 0.
  [[nodiscard]] pid_t leader_tid() const {
    return leader_tid_.load(std::memory_order_relaxed);
  }

  /// Sends a block/unblock intent to a thread of THIS process by slot
  /// (used by in-process tests; the real manager uses tgkill on the leader).
  void signal_slot(int slot, int signo);

  /// Disengages the gate: wakes every suspended thread and makes further
  /// block intents no-ops, so the application free-runs under the kernel
  /// scheduler. The client library calls this when it detects the manager
  /// died (docs/ROBUSTNESS.md) — a crashed manager must never leave an
  /// application suspended forever. Signal-count state is untouched; call
  /// rearm() when a (new) manager takes over.
  void release_all();

  /// Re-engages a released gate (e.g. after reconnecting to a restarted
  /// manager). Squares each slot's block/unblock counts so stale history
  /// cannot re-suspend a thread. Only call while no manager is signaling.
  void rearm();

  /// True while the gate is disengaged (application free-running).
  [[nodiscard]] bool released() const {
    return released_.load(std::memory_order_relaxed);
  }

  /// Testing hook: clears all registration state. Only safe when no thread
  /// is suspended.
  void reset_for_tests();

 private:
  SignalGate() = default;

  static void handle_block(int signo);
  static void handle_unblock(int signo);
  void on_block();
  void on_unblock();
  void forward(int signo);
  [[nodiscard]] int slot_of_self() const;

  std::atomic<int> nthreads_{0};
  std::atomic<pid_t> leader_tid_{0};
  pthread_t handles_[kMaxThreads] = {};
  std::atomic<bool> active_[kMaxThreads] = {};
  std::atomic<int> blocks_[kMaxThreads] = {};
  std::atomic<int> unblocks_[kMaxThreads] = {};
  std::atomic<bool> suspended_[kMaxThreads] = {};
  std::atomic<bool> installed_{false};
  std::atomic<bool> released_{false};  ///< gate disengaged (free-run mode)
};

}  // namespace bbsched::runtime
