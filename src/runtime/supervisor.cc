#include "runtime/supervisor.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "faults/sysfail.h"

namespace bbsched::runtime {

namespace {

// SIGTERM can be delivered on any of the child's threads (the manager
// spawns its own loop thread), so handler→main-loop visibility needs a
// lock-free atomic — volatile sig_atomic_t only covers a handler
// interrupting the same thread. Lock-free atomics are async-signal-safe.
std::atomic<int> g_child_term{0};

// bbsched:signal SIGTERM handler installed by the supervised child
void child_term_handler(int) {
  g_child_term.store(1, std::memory_order_relaxed);
}

/// Child-process body: run the manager, heartbeat the parent, exit 0 on
/// SIGTERM. Never returns. Uses _exit so the parent's atexit handlers and
/// static destructors (inherited by fork) run exactly once — in the parent.
[[noreturn]] void run_manager_child(const ServerConfig& server_cfg,
                                    std::uint64_t heartbeat_period_us,
                                    int heartbeat_wr) {
  g_child_term.store(0, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = child_term_handler;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  // Parent-side observability pointers are copies of parent memory here:
  // writable but invisible to the parent. Detach them — the child's own
  // story is told through the journal and the protocol.
  ServerConfig cfg = server_cfg;
  cfg.tracer = nullptr;
  cfg.metrics = nullptr;

  ManagerServer server(cfg);
  if (!server.start()) {
    ::close(heartbeat_wr);
    ::_exit(3);  // bind failed / live manager on the path: crash-restart
  }

  timespec period{};
  period.tv_sec = static_cast<time_t>(heartbeat_period_us / 1000000ULL);
  period.tv_nsec =
      static_cast<long>((heartbeat_period_us % 1000000ULL) * 1000ULL);
  while (g_child_term.load(std::memory_order_relaxed) == 0) {
    // 'h' = healthy; 'd' = alive but journal-less (the ENOSPC ladder gave
    // up) — the supervisor learns that the *next* restart will cold-start,
    // i.e. recovery fidelity is reduced, without a second channel.
    const char beat = server.journal_degraded() ? 'd' : 'h';
    const ssize_t n = faults::sys::write(heartbeat_wr, &beat, 1);
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      break;  // parent is gone; no point outliving it
    }
    ::nanosleep(&period, nullptr);  // EINTR (SIGTERM) re-checks the flag
  }
  server.stop();
  ::close(heartbeat_wr);
  ::_exit(0);
}

}  // namespace

Supervisor::Supervisor(const SupervisorConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), backoff_us_(cfg.initial_backoff_us) {
  if (cfg_.metrics != nullptr) {
    m_restarts_ =
        &cfg_.metrics->counter("server.recovery.supervisor_restarts");
    m_watchdog_kills_ =
        &cfg_.metrics->counter("server.recovery.watchdog_kills");
    m_gave_up_ = &cfg_.metrics->gauge("server.recovery.supervisor_gave_up");
    m_fork_failures_ =
        &cfg_.metrics->counter("server.recovery.fork_failures");
    m_child_degraded_ =
        &cfg_.metrics->gauge("server.recovery.child_journal_degraded");
  }
}

Supervisor::~Supervisor() { stop(); }

bool Supervisor::kill_child(int sig) const {
  const pid_t pid = child_pid_.load(std::memory_order_relaxed);
  return pid > 0 && ::kill(pid, sig) == 0;
}

void Supervisor::close_heartbeat() {
  if (heartbeat_fd_ >= 0) {
    ::close(heartbeat_fd_);
    heartbeat_fd_ = -1;
  }
}

bool Supervisor::spawn_child() {
  int fds[2] = {-1, -1};
  // Both ends non-blocking: the parent drains without blocking, and a
  // full pipe (parent briefly behind) costs the child one heartbeat, not a
  // stall.
  if (::pipe2(fds, O_CLOEXEC | O_NONBLOCK) < 0) return false;

  ServerConfig child_cfg = cfg_.server;
  child_cfg.generation = generation_.load(std::memory_order_relaxed) + 1;

  const pid_t pid = faults::sys::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(fds[0]);
    ::close(fds[1]);
    errno = saved;  // the caller reports *fork's* errno, not close's
    return false;
  }
  if (pid == 0) {
    ::close(fds[0]);
    run_manager_child(child_cfg, cfg_.heartbeat_period_us, fds[1]);
  }
  ::close(fds[1]);
  heartbeat_fd_ = fds[0];
  generation_.store(child_cfg.generation, std::memory_order_relaxed);
  child_pid_.store(pid, std::memory_order_relaxed);
  // Each child reports its own journal health; a fresh one may journal
  // fine again (the disk recovered, or compaction freed space at start).
  child_degraded_.store(false, std::memory_order_relaxed);
  if (m_child_degraded_ != nullptr) m_child_degraded_->set(0.0);
  return true;
}

bool Supervisor::start() {
  if (monitor_.joinable()) return false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = false;
  }
  gave_up_.store(false, std::memory_order_relaxed);
  if (m_gave_up_ != nullptr) m_gave_up_->set(0.0);
  if (!spawn_child()) return false;
  if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
    cfg_.tracer->supervisor_restart(monotonic_now_us(),
                                    {generation(), 0, 0, 0});
  }
  supervising_.store(true, std::memory_order_relaxed);
  monitor_ = std::thread([this] { monitor_loop(); });
  return true;
}

void Supervisor::stop() {
  if (!monitor_.joinable()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  // SIGCONT first: a SIGSTOPped child (chaos) cannot handle SIGTERM.
  const pid_t pid = child_pid_.load(std::memory_order_relaxed);
  if (pid > 0) {
    ::kill(pid, SIGCONT);
    ::kill(pid, SIGTERM);
  }
  monitor_.join();
}

bool Supervisor::breaker_allows(std::uint64_t now_us) {
  if (cfg_.max_restarts <= 0) return true;
  while (!restart_times_us_.empty() &&
         now_us - restart_times_us_.front() > cfg_.breaker_window_us) {
    restart_times_us_.pop_front();
  }
  return static_cast<int>(restart_times_us_.size()) < cfg_.max_restarts;
}

bool Supervisor::backoff_sleep() {
  const double factor = 1.0 + cfg_.jitter * (rng_.uniform() - 0.5);
  const auto sleep_us = static_cast<std::uint64_t>(
      static_cast<double>(backoff_us_) * (factor > 0.0 ? factor : 1.0));
  backoff_us_ = std::min(
      static_cast<std::uint64_t>(static_cast<double>(backoff_us_) *
                                 cfg_.backoff_multiplier),
      cfg_.max_backoff_us);
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait_for(lk, std::chrono::microseconds(sleep_us),
               [this] { return stopping_; });
  return !stopping_;
}

void Supervisor::monitor_loop() {
  int status = 0;
  for (;;) {
    const pid_t pid = child_pid_.load(std::memory_order_relaxed);
    bool exited = false;
    bool stop_requested = false;
    int misses = 0;

    while (!exited && !stop_requested) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        stop_requested = stopping_;
      }
      if (stop_requested) break;

      pollfd pfd{heartbeat_fd_, POLLIN, 0};
      const int timeout_ms =
          static_cast<int>(cfg_.heartbeat_period_us / 1000ULL) + 1;
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc < 0 && errno != EINTR) break;

      if (rc > 0) {
        char buf[64];
        ssize_t n;
        while ((n = faults::sys::read(heartbeat_fd_, buf, sizeof(buf))) > 0) {
          misses = 0;
          // A live heartbeat proves the restart took: reset the backoff so
          // the *next* crash starts from the minimum again.
          backoff_us_ = cfg_.initial_backoff_us;
          for (ssize_t i = 0; i < n; ++i) {
            if (buf[i] == 'd' && !child_degraded_.exchange(
                                     true, std::memory_order_relaxed)) {
              // The child runs journal-less: its successor cold-starts.
              if (m_child_degraded_ != nullptr) m_child_degraded_->set(1.0);
            }
          }
        }
        if (n == 0) {
          // EOF: the child closed its write end — it exited. Reap it.
          while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
          }
          exited = true;
        }
      } else if (rc == 0 && cfg_.heartbeat_miss_limit > 0 &&
                 ++misses >= cfg_.heartbeat_miss_limit && pid > 0) {
        // Hang watchdog: no heartbeat for the whole budget. A SIGSTOPped,
        // livelocked or deadlocked manager is operationally dead — kill it
        // (SIGKILL terminates stopped processes too) and restart. The
        // pid > 0 guard is structural: this loop is only entered with a
        // live child, but kill(-1) would signal every process we can reach
        // — worth a belt-and-braces check forever.
        ::kill(pid, SIGKILL);
        if (m_watchdog_kills_ != nullptr) m_watchdog_kills_->inc();
        while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
        }
        exited = true;
      }
    }

    if (stop_requested) {
      if (!exited && pid > 0) {
        // stop() already sent SIGCONT+SIGTERM. Give the child a bounded
        // grace period, then escalate.
        for (int i = 0; i < 200 && !exited; ++i) {
          if (::waitpid(pid, &status, WNOHANG) == pid) {
            exited = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        if (!exited) {
          ::kill(pid, SIGKILL);
          while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
          }
        }
      }
      close_heartbeat();
      child_pid_.store(-1, std::memory_order_relaxed);
      supervising_.store(false, std::memory_order_relaxed);
      return;
    }

    close_heartbeat();
    child_pid_.store(-1, std::memory_order_relaxed);

    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      // Clean shutdown is never restarted.
      supervising_.store(false, std::memory_order_relaxed);
      return;
    }

    // Respawn ladder: stay here until a child is actually running again.
    // fork() itself fails under pressure (EAGAIN/ENOMEM) — each failed
    // attempt counts toward the same circuit breaker and pays the same
    // jittered exponential backoff as a crashed child. The pre-ladder code
    // instead synthesized a crash status and re-entered the wait loop with
    // child_pid_ == -1, where the watchdog's kill() would have targeted
    // pid -1 (every reachable process) — and with the watchdog disabled it
    // polled a closed pipe forever.
    for (;;) {
      const std::uint64_t now = monotonic_now_us();
      if (!breaker_allows(now)) {
        // Restart (or fork-failure) storm: give up permanently. Clients
        // exhaust their reattach budgets and free-run — the documented
        // degraded mode.
        gave_up_.store(true, std::memory_order_relaxed);
        if (m_gave_up_ != nullptr) m_gave_up_->set(1.0);
        if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
          cfg_.tracer->supervisor_restart(
              now, {generation() + 1,
                    restarts_.load(std::memory_order_relaxed), 0, 1});
        }
        supervising_.store(false, std::memory_order_relaxed);
        return;
      }

      const std::uint64_t backoff_taken = backoff_us_;
      if (!backoff_sleep()) {
        supervising_.store(false, std::memory_order_relaxed);
        return;  // stop() during the backoff; the child is already gone
      }
      restart_times_us_.push_back(monotonic_now_us());
      restarts_.fetch_add(1, std::memory_order_relaxed);
      if (m_restarts_ != nullptr) m_restarts_->inc();

      if (spawn_child()) {
        if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
          cfg_.tracer->supervisor_restart(
              monotonic_now_us(),
              {generation(), restarts_.load(std::memory_order_relaxed),
               backoff_taken, 0});
        }
        break;  // a live child again; back to the wait loop
      }
      const int fork_errno = errno;
      fork_failures_.fetch_add(1, std::memory_order_relaxed);
      if (m_fork_failures_ != nullptr) m_fork_failures_->inc();
      if (cfg_.tracer != nullptr && cfg_.tracer->enabled()) {
        cfg_.tracer->fault(monotonic_now_us(),
                           {-1, obs::FaultKind::kForkFailure,
                            static_cast<double>(fork_errno)});
      }
    }
  }
}

}  // namespace bbsched::runtime
