// A small fixed-size worker pool for fanning independent tasks across
// hardware threads.
//
// Deliberately minimal: one shared FIFO queue, no work stealing, no task
// priorities. The experiment harness submits coarse-grained tasks (whole
// simulations, tens to hundreds of milliseconds each), so queue contention
// is negligible and a single mutex-protected deque is the simplest thing
// that is obviously correct. Results and exceptions travel through
// std::future, so a task that throws surfaces its exception at the caller's
// future.get() instead of killing a worker.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace bbsched::runtime {

class ThreadPool {
 public:
  /// Spawns `workers` threads; `workers <= 0` uses hardware_workers().
  explicit ThreadPool(int workers = 0);

  /// Drains the queue (every submitted task still runs) and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(threads_.size());
  }

  /// Number of hardware threads, with a floor of 1 (the standard allows
  /// hardware_concurrency() to return 0 when unknown).
  [[nodiscard]] static int hardware_workers() noexcept;

  /// Enqueues `fn` for execution on some worker. The returned future yields
  /// fn's result; if fn throws, future.get() rethrows the exception.
  template <class F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only; std::function requires copyable targets,
    // so the task rides in a shared_ptr.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

 private:
  void enqueue(std::function<void()> fn);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace bbsched::runtime
