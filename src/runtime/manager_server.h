// The user-level CPU manager as a real server (paper §4).
//
// "The user-level CPU manager runs as a server process on the target
//  system. Each application that wishes to use the new scheduling policies
//  sends a 'connection' message to the CPU manager (through a standard
//  UNIX-socket). The CPU manager responds ... by creating a shared arena
//  ... It also informs the application how often the bus transaction rate
//  information on the shared-arena is expected to be updated."
//
// This class implements exactly that: a UNIX-domain socket server that hands
// each application a shared-memory arena (memfd over SCM_RIGHTS), samples
// the arenas twice per scheduling quantum, feeds core::CpuManager, and
// enforces its elections by sending SIGUSR1/SIGUSR2 to application leader
// threads (which forward to their siblings — see signal_gate.h).
//
// It can manage any process that links the client library; the examples run
// it in-process against worker threads, which exercises the identical code
// path (signals, arenas and sockets behave the same within one process).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cpu_manager.h"
#include "obs/tracer.h"
#include "runtime/arena.h"

namespace bbsched::runtime {

struct ServerConfig {
  core::ManagerConfig manager{};
  std::string socket_path = "/tmp/bbsched-manager.sock";
  /// Processors to allocate (defaults to the host's online CPUs).
  int nprocs = 0;
  /// Optional structured event tracer (non-owning). The manager thread is
  /// the only writer; export the trace after stop(). Timestamps are
  /// monotonic wall-clock microseconds (monotonic_now_us()).
  obs::Tracer* tracer = nullptr;
};

class ManagerServer {
 public:
  explicit ManagerServer(const ServerConfig& cfg);
  ~ManagerServer();

  ManagerServer(const ManagerServer&) = delete;
  ManagerServer& operator=(const ManagerServer&) = delete;

  /// Binds the socket and starts the manager thread. False on bind failure.
  bool start();

  /// Unblocks every application, stops the manager thread, unlinks the
  /// socket. Idempotent.
  void stop();

  // ---- introspection (thread-safe snapshots, used by tests/examples) ----
  [[nodiscard]] std::uint64_t elections() const;
  [[nodiscard]] std::size_t connected_apps() const;
  [[nodiscard]] std::vector<std::string> running_app_names() const;
  /// Latest policy estimate (BBW/thread, transactions/µs) per app name.
  [[nodiscard]] std::vector<std::pair<std::string, double>> estimates() const;

  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }

 private:
  struct AppConn {
    int sock = -1;
    int manager_id = -1;  ///< id inside core::CpuManager; -1 until Ready
    pid_t pid = 0;
    pid_t leader_tid = 0;
    int nthreads = 1;
    std::string name;
    Arena* arena = nullptr;
    int arena_fd = -1;
    std::uint64_t last_read = 0;
    bool ready = false;
    bool blocked = false;
  };

  void loop();
  void accept_connection();
  bool handle_client(std::size_t idx);  ///< false => disconnect
  void drop_client(std::size_t idx);
  void sample_running(std::uint64_t now_us);
  void quantum_boundary(std::uint64_t now_us);
  void set_blocked(AppConn& app, bool blocked);

  ServerConfig cfg_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  bool started_ = false;

  mutable std::mutex mu_;
  core::CpuManager manager_;
  std::vector<std::unique_ptr<AppConn>> apps_;
  std::uint64_t elections_ = 0;
  std::uint64_t quantum_start_us_ = 0;
  int samples_taken_ = 0;
  bool stopping_ = false;
};

/// Monotonic clock in microseconds.
[[nodiscard]] std::uint64_t monotonic_now_us();

}  // namespace bbsched::runtime
