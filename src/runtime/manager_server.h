// The user-level CPU manager as a real server (paper §4).
//
// "The user-level CPU manager runs as a server process on the target
//  system. Each application that wishes to use the new scheduling policies
//  sends a 'connection' message to the CPU manager (through a standard
//  UNIX-socket). The CPU manager responds ... by creating a shared arena
//  ... It also informs the application how often the bus transaction rate
//  information on the shared-arena is expected to be updated."
//
// This class implements exactly that: a UNIX-domain socket server that hands
// each application a shared-memory arena (memfd over SCM_RIGHTS), samples
// the arenas twice per scheduling quantum, feeds core::CpuManager, and
// enforces its elections by sending SIGUSR1/SIGUSR2 to application leader
// threads (which forward to their siblings — see signal_gate.h).
//
// It can manage any process that links the client library; the examples run
// it in-process against worker threads, which exercises the identical code
// path (signals, arenas and sockets behave the same within one process).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/cpu_manager.h"
#include "obs/tracer.h"
#include "runtime/arena.h"
#include "runtime/protocol.h"

namespace bbsched::runtime {

struct ServerConfig {
  core::ManagerConfig manager{};
  std::string socket_path = "/tmp/bbsched-manager.sock";
  /// Processors to allocate (defaults to the host's online CPUs).
  int nprocs = 0;
  /// Optional structured event tracer (non-owning). The manager thread is
  /// the only writer; export the trace after stop(). Timestamps are
  /// monotonic wall-clock microseconds (monotonic_now_us()).
  obs::Tracer* tracer = nullptr;
  /// Optional metrics registry (non-owning): server fault counters plus the
  /// embedded CpuManager's staleness instruments (docs/OBSERVABILITY.md).
  obs::MetricsRegistry* metrics = nullptr;

  /// Bound on every handshake receive (SO_RCVTIMEO): a client that dials in
  /// and then stalls mid-HelloMsg — or leaves a ReadyMsg half-written —
  /// cannot freeze the manager loop. <= 0 disables (pre-hardening blocking
  /// behaviour, for tests only).
  int handshake_timeout_ms = 2000;

  /// Arena update periods with no heartbeat progress before the app's
  /// leader is probed (tgkill signal 0). A dead leader (ESRCH) is reaped;
  /// a live one with a frozen updater is reported as kStaleArena and left
  /// to the staleness policy. >= 2 tolerates sampling/updater phase drift.
  int heartbeat_stall_intervals = 3;

  // ---- overload-safe admission / adversary tolerance (ROBUSTNESS.md §8) --

  /// Connected-application cap. A hello beyond the cap is answered with a
  /// typed HelloNack(kServerFull) — unless a sheddable feed exists
  /// (adversarial > quarantined > never-ready, oldest first), which is
  /// evicted in favour of the newcomer. 0 = unlimited (legacy behaviour).
  int max_clients = 0;

  /// accept() failure backoff (EMFILE/ENFILE under fd exhaustion — or any
  /// other hard accept error): the listen socket is parked for the current
  /// backoff instead of hot re-polling a permanently-readable fd. The
  /// backoff doubles per consecutive failure, bounded by the max, and
  /// resets on the next successful accept.
  int accept_backoff_initial_ms = 5;
  int accept_backoff_max_ms = 1000;

  /// Per-peer handshake-attempt rate limit: more than this many accepted
  /// connections from one peer process (SO_PEERCRED pid) inside one window
  /// are answered with HelloNack(kRateLimited) before any frame is read.
  /// 0 disables. Keyed by pid, so an in-process test fleet sharing one pid
  /// must either disable it or stay under the budget.
  int handshake_attempts_per_peer = 0;
  int handshake_window_ms = 1000;

  /// Hostile arena samples (backwards / bus-impossible deltas) from one
  /// feed before it is classified adversarial: its samples are withheld
  /// from the CpuManager for good, its feed is force-quarantined (the
  /// election treats it as written off), and it becomes the preferred
  /// load-shedding victim. <= 0 disables classification (every hostile
  /// value is still clamped away from the estimator, merely unattributed).
  int adversarial_strikes = 3;

  // ---- crash recovery (docs/ROBUSTNESS.md §7) ----

  /// Manager restart epoch, stamped into every outgoing protocol frame.
  /// The supervisor increments it per restart; clients learn it from
  /// HelloAck and messages from an older epoch are rejected.
  std::uint32_t generation = 0;

  /// State journal path; empty disables journaling. On start() the newest
  /// intact snapshot is restored (feeds parked for adoption by reattaching
  /// clients); every `journal_period_quanta` elections the manager state is
  /// appended. Journal I/O failure is advisory — it never takes the control
  /// plane down.
  std::string journal_path;

  /// Elections between journal appends (>= 1). The journal trails live
  /// state by at most this many quanta — the recovery staleness bound.
  int journal_period_quanta = 4;

  /// Journal appends before compaction to a single record.
  int journal_max_records = 64;

  /// Consecutive journal-append failures (ENOSPC class) tolerated before
  /// the manager degrades to journal-less operation. Each failure first
  /// attempts the bounded rotation (compact the journal to its newest
  /// record, reclaiming every byte it can); only a streak of failures that
  /// rotation cannot cure trips the degrade. Degrading emits a
  /// kJournalDegraded event, raises manager.journal.degraded, and flips
  /// journal_degraded() so the supervised child can tell its supervisor
  /// that recovery fidelity is reduced. Elections continue unaffected —
  /// losing the journal never takes the control plane down. <= 0 degrades
  /// on the first failed rotation.
  int journal_failure_limit = 3;
};

class ManagerServer {
 public:
  explicit ManagerServer(const ServerConfig& cfg);
  ~ManagerServer();

  ManagerServer(const ManagerServer&) = delete;
  ManagerServer& operator=(const ManagerServer&) = delete;

  /// Binds the socket and starts the manager thread. False on bind failure
  /// or when another live manager already serves `socket_path`. A *stale*
  /// socket file (left by a crashed manager: nothing accepts on it) is
  /// detected by a probe connect, unlinked, and rebound — a crash never
  /// needs manual cleanup before restart.
  bool start();

  /// Unblocks every application, stops the manager thread, unlinks the
  /// socket. Idempotent.
  void stop();

  // ---- introspection (thread-safe snapshots, used by tests/examples) ----
  [[nodiscard]] std::uint64_t elections() const;
  [[nodiscard]] std::size_t connected_apps() const;
  [[nodiscard]] std::vector<std::string> running_app_names() const;
  /// Latest policy estimate (BBW/thread, transactions/µs) per app name.
  [[nodiscard]] std::vector<std::pair<std::string, double>> estimates() const;
  /// Feeds restored from the journal at start() and still awaiting a
  /// reattaching client to adopt them.
  [[nodiscard]] std::size_t pending_restores() const;
  /// Feeds parked by the journal restore at start() (0 = cold start).
  [[nodiscard]] int restored_feeds() const noexcept {
    return restored_feeds_;
  }
  /// True once the journal ENOSPC ladder gave up and the manager runs
  /// journal-less (docs/ROBUSTNESS.md §9). Thread-safe: polled by the
  /// supervised child's heartbeat writer to tell the supervisor that
  /// recovery fidelity is reduced.
  [[nodiscard]] bool journal_degraded() const noexcept {
    return journal_degraded_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const ServerConfig& config() const noexcept { return cfg_; }

 private:
  struct AppConn {
    int sock = -1;
    int manager_id = -1;  ///< id inside core::CpuManager; -1 until Ready
    pid_t pid = 0;
    pid_t leader_tid = 0;
    int nthreads = 1;
    std::string name;
    Arena* arena = nullptr;
    int arena_fd = -1;
    std::uint64_t last_read = 0;
    bool ready = false;
    bool blocked = false;
    // ---- liveness (docs/ROBUSTNESS.md) ----
    std::uint64_t last_heartbeat = 0;  ///< arena heartbeat at last sample
    int stall_intervals = 0;           ///< consecutive no-progress samples
    bool dead = false;                 ///< leader gone (ESRCH); reap pending
    bool reattached = false;           ///< joined via kReattach (recovery)
    // ---- adversary tolerance (docs/ROBUSTNESS.md §8) ----
    std::uint64_t connected_at_us = 0; ///< admission time (shedding order)
    int strikes = 0;                   ///< hostile arena samples observed
    bool adversarial = false;          ///< strikes exceeded; feed distrusted
  };

  /// Per-peer handshake-attempt window (rate limiting). Fixed-size table,
  /// oldest-window slot recycled — a deliberate cap so a pid-spraying
  /// adversary cannot grow manager memory.
  struct PeerWindow {
    pid_t pid = 0;
    std::uint64_t window_start_us = 0;
    int attempts = 0;
  };

  void loop();
  void accept_connection();
  /// True when the per-peer handshake budget still admits `pid` now.
  /// Updates the window table. Caller holds no lock (manager thread only).
  bool admit_peer(pid_t pid, std::uint64_t now_us);
  /// Sends a typed rejection and closes the socket (best-effort: a peer
  /// that already vanished just loses the explanation).
  void nack_and_close(int sock, HelloNackReason reason,
                      std::uint32_t retry_after_ms, std::uint64_t now_us);
  /// Picks and evicts one sheddable app (adversarial > quarantined feed >
  /// never-ready, oldest first) to admit a newcomer. Caller must hold mu_.
  /// Returns false when every connected app is healthy — nothing is shed.
  bool shed_victim_locked(std::uint64_t now_us);
  bool handle_client(std::size_t idx);  ///< false => disconnect
  void drop_client(std::size_t idx);
  /// Body of drop_client for callers already holding mu_.
  void drop_client_locked(std::size_t idx);
  void sample_running(std::uint64_t now_us);
  void quantum_boundary(std::uint64_t now_us);
  /// Signals the leader; returns false when the leader is gone (ESRCH),
  /// which marks the app dead for reaping.
  bool set_blocked(AppConn& app, bool blocked);
  /// Reaps every app marked dead. Caller must hold mu_.
  void reap_dead_locked(std::uint64_t now_us);
  /// Emits one server-side fault: metrics counter + trace event.
  void count_fault(obs::FaultKind kind, int app_id, double value,
                   std::uint64_t now_us);

  ServerConfig cfg_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  bool started_ = false;

  // ---- accept backoff state (manager thread only) ----
  std::uint64_t accept_retry_at_us_ = 0;  ///< listen fd parked until then
  int accept_backoff_ms_ = 0;             ///< current backoff (0 = healthy)
  std::vector<PeerWindow> peer_windows_;  ///< bounded rate-limit table

  mutable std::mutex mu_;
  core::CpuManager manager_;
  std::vector<std::unique_ptr<AppConn>> apps_;
  std::uint64_t elections_ = 0;
  std::uint64_t quantum_start_us_ = 0;
  int samples_taken_ = 0;
  bool stopping_ = false;

  // ---- crash recovery ----
  std::unique_ptr<core::JournalWriter> journal_;
  int quanta_since_journal_ = 0;
  int restored_feeds_ = 0;
  int journal_fail_streak_ = 0;  ///< consecutive failed appends+rotations
  std::atomic<bool> journal_degraded_{false};  ///< journal-less mode latched

  // ---- server fault counters (non-owning; null = off) ----
  obs::Counter* m_dead_leaders_ = nullptr;
  obs::Counter* m_stale_arenas_ = nullptr;
  obs::Counter* m_handshake_timeouts_ = nullptr;
  obs::Counter* m_stale_sockets_ = nullptr;
  obs::Counter* m_bad_messages_ = nullptr;
  obs::Counter* m_reattaches_ = nullptr;
  obs::Counter* m_restores_ = nullptr;
  obs::Counter* m_journal_appends_ = nullptr;
  obs::Counter* m_journal_errors_ = nullptr;

  // ---- adversary / overload instruments (docs/ROBUSTNESS.md §8) ----
  obs::Counter* m_unexpected_fd_ = nullptr;    ///< server.faults.unexpected_fd
  obs::Counter* m_invalid_hello_ = nullptr;    ///< server.faults.invalid_hello
  obs::Counter* m_scribbles_ = nullptr;        ///< server.adversarial.scribbles
  obs::Counter* m_adv_quarantines_ = nullptr;  ///< .adversarial.quarantines
  obs::Counter* m_accept_backoffs_ = nullptr;  ///< .overload.accept_backoffs
  obs::Counter* m_rejected_full_ = nullptr;    ///< .overload.rejected_full
  obs::Counter* m_rate_limited_ = nullptr;     ///< .overload.rate_limited
  obs::Counter* m_load_sheds_ = nullptr;       ///< .overload.load_sheds
  obs::Histogram* m_election_us_ = nullptr;    ///< server.election_us

  // ---- OS-failure hardening instruments (docs/ROBUSTNESS.md §9) ----
  obs::Counter* m_journal_rotations_ = nullptr; ///< .recovery.journal_rotations
  obs::Gauge* m_journal_degraded_g_ = nullptr;  ///< manager.journal.degraded
  obs::Counter* m_arena_failures_ = nullptr;    ///< server.faults.arena_exhausted
  obs::Gauge* m_sysfail_injected_ = nullptr;    ///< server.sysfail.injected
  obs::Gauge* m_sysfail_clock_clamped_ = nullptr; ///< server.sysfail.clock_clamped
};

/// Monotonic clock in microseconds.
[[nodiscard]] std::uint64_t monotonic_now_us();

}  // namespace bbsched::runtime
