#include "runtime/client.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/un.h>
#include <unistd.h>

#include "faults/sysfail.h"
#include "runtime/protocol.h"
#include "runtime/signal_gate.h"
#include "stats/rng.h"

namespace bbsched::runtime {

Client::~Client() { disconnect(); }

bool Client::connect(const std::string& socket_path, const std::string& name,
                     int nthreads, const ConnectRetry& retry) {
  stats::Rng rng(retry.seed);
  std::uint64_t backoff = retry.initial_backoff_us;
  for (int attempt = 0;; ++attempt) {
    if (connect(socket_path, name, nthreads)) {
      last_connect_retries_ = attempt;
      return true;
    }
    if (attempt + 1 >= retry.attempts) return false;
    // Jittered exponential backoff: sleep backoff * (1 ± jitter/2), then
    // grow the base toward the ceiling.
    const double factor = 1.0 + retry.jitter * (rng.uniform() - 0.5);
    const auto sleep_us = static_cast<std::uint64_t>(
        static_cast<double>(backoff) * (factor > 0.0 ? factor : 1.0));
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    backoff = std::min(
        static_cast<std::uint64_t>(static_cast<double>(backoff) *
                                   retry.multiplier),
        retry.max_backoff_us);
  }
}

namespace {

/// Dials the manager's UNIX socket; -1 on failure.
int dial(const std::string& socket_path) {
  const int sock = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (sock < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(sock);
    return -1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(sock);
    return -1;
  }
  // Bound the handshake: a manager that accepts but never answers (e.g.
  // SIGSTOPped mid-restart) must not hang the caller forever.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(sock, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return sock;
}

/// Hello/Reattach handshake on an already-dialed socket: sends the request,
/// receives HelloAck + arena fd, maps and validates the arena. On success
/// fills *arena_out / *ack_out / *generation_out and returns true; on any
/// failure closes nothing but the resources it created itself. A typed
/// manager rejection (kHelloNack) stores its HelloNackReason in *nack_out.
bool handshake(int sock, MsgType type, std::uint32_t generation,
               std::int32_t pid, std::int32_t leader_tid, int nthreads,
               const std::string& name, Arena** arena_out, HelloAck* ack_out,
               std::uint32_t* generation_out, std::int32_t* nack_out) {
  HelloMsg hello{};
  hello.pid = pid;
  hello.leader_tid = leader_tid;
  hello.nthreads = nthreads;
  std::strncpy(hello.name, name.c_str(), sizeof(hello.name) - 1);
  if (!send_msg(sock, type, generation, &hello, sizeof(hello))) return false;

  MsgHeader hdr{};
  HelloAck ack{};
  int arena_fd = -1;
  const RecvStatus st = recv_msg(sock, hdr, &ack, sizeof(ack), &arena_fd);
  if (st == RecvStatus::kOk &&
      hdr.type == static_cast<std::uint16_t>(MsgType::kHelloNack)) {
    // The manager refused admission and said why (overload, rate limit,
    // invalid hello). The raw bytes arrived in `ack`'s buffer.
    HelloNackMsg nack{};
    static_assert(sizeof(nack) <= sizeof(ack), "nack reuses the ack buffer");
    std::memcpy(static_cast<void*>(&nack), static_cast<const void*>(&ack),
                sizeof(nack));
    if (nack_out != nullptr) *nack_out = nack.reason;
    if (arena_fd >= 0) ::close(arena_fd);
    return false;
  }
  if (st != RecvStatus::kOk ||
      hdr.type != static_cast<std::uint16_t>(MsgType::kHelloAck) ||
      arena_fd < 0) {
    if (arena_fd >= 0) ::close(arena_fd);
    return false;
  }

  // Mapping can fail under memory pressure (ENOMEM): a false return here
  // feeds the caller's normal connect-retry path — transient exhaustion
  // costs a retry, not the process.
  Arena* arena = arena_map(arena_fd);
  ::close(arena_fd);  // the mapping keeps the memory alive
  if (arena == nullptr) return false;
  if (arena->magic != Arena::kMagic) {
    arena_unmap(arena);
    return false;
  }
  *arena_out = arena;
  *ack_out = ack;
  *generation_out = hdr.generation;
  return true;
}

}  // namespace

bool Client::connect(const std::string& socket_path, const std::string& name,
                     int nthreads) {
  assert(sock_.load(std::memory_order_relaxed) < 0 && "already connected");
  assert(nthreads >= 1);

  SignalGate::instance().install();

  const int sock = dial(socket_path);
  if (sock < 0) return false;

  // The connecting (leader) thread receives the manager's signals. Use the
  // caller's own tid — several clients can coexist in one process (each a
  // logical "application"), so the gate-wide leader is not necessarily us.
  const auto leader_tid =
      static_cast<std::int32_t>(::syscall(SYS_gettid));

  Arena* arena = nullptr;
  HelloAck ack{};
  std::uint32_t gen = 0;
  std::int32_t nack = 0;
  last_nack_reason_.store(0, std::memory_order_relaxed);
  if (!handshake(sock, MsgType::kHello, 0, ::getpid(), leader_tid, nthreads,
                 name, &arena, &ack, &gen, &nack)) {
    last_nack_reason_.store(nack, std::memory_order_relaxed);
    ::close(sock);
    return false;
  }

  socket_path_ = socket_path;
  name_ = name;
  leader_tid_ = leader_tid;
  generation_.store(gen, std::memory_order_relaxed);
  update_period_us_.store(ack.update_period_us, std::memory_order_relaxed);
  nthreads_ = nthreads;
  arena_.store(arena, std::memory_order_release);
  sock_.store(sock, std::memory_order_release);
  unmanaged_.store(false, std::memory_order_relaxed);
  // Re-engage the gate in case a previous manager died and released it.
  if (SignalGate::instance().released()) SignalGate::instance().rearm();

  // The connecting thread is the leader worker: the manager signals it and
  // it forwards to siblings registered later.
  register_worker();
  return true;
}

int Client::register_worker() {
  SignalGate::instance().register_current_thread();
  const int slot = perfctr::global_counters().register_thread();
  {
    std::lock_guard<std::mutex> lk(mu_);
    counter_slots_.push_back(slot);
  }
  Arena* arena = arena_.load(std::memory_order_relaxed);
  if (arena != nullptr) {
    arena->threads_registered.fetch_add(1, std::memory_order_relaxed);
  }
  return slot;
}

void Client::unregister_worker() {
  SignalGate::instance().unregister_current_thread();
}

std::uint64_t Client::total_transactions() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (int slot : counter_slots_) {
    total += perfctr::global_counters().read(slot);
  }
  return total;
}

bool Client::ready() {
  const int sock = sock_.load(std::memory_order_relaxed);
  if (sock < 0) return false;
  ReadyMsg msg{};
  if (!send_msg(sock, MsgType::kReady,
                generation_.load(std::memory_order_relaxed), &msg,
                sizeof(msg))) {
    return false;
  }

  stop_updater_.store(false, std::memory_order_relaxed);
  updater_ = std::thread([this] { updater_loop(); });
  return true;
}

bool Client::interruptible_sleep_us(std::uint64_t us) {
  // Sleep in short slices so disconnect() never waits out a whole backoff.
  constexpr std::uint64_t kSliceUs = 10'000;
  while (us > 0) {
    if (stop_updater_.load(std::memory_order_relaxed)) return false;
    const std::uint64_t slice = us < kSliceUs ? us : kSliceUs;
    std::this_thread::sleep_for(std::chrono::microseconds(slice));
    us -= slice;
  }
  return !stop_updater_.load(std::memory_order_relaxed);
}

bool Client::try_reattach() {
  const int sock = dial(socket_path_);
  if (sock < 0) return false;

  Arena* arena = nullptr;
  HelloAck ack{};
  std::uint32_t gen = 0;
  std::int32_t nack = 0;
  // A reattach announces the same identity the dead manager knew — above
  // all the original leader tid, so the new generation signals the same
  // thread and the workers never restart.
  if (!handshake(sock, MsgType::kReattach,
                 generation_.load(std::memory_order_relaxed), ::getpid(),
                 leader_tid_, nthreads_, name_, &arena, &ack, &gen, &nack)) {
    if (nack != 0) last_nack_reason_.store(nack, std::memory_order_relaxed);
    ::close(sock);
    return false;
  }

  // The workers are already registered; tell the fresh arena directly.
  arena->threads_registered.store(
      static_cast<std::uint32_t>(nthreads_), std::memory_order_relaxed);

  ReadyMsg msg{};
  if (!send_msg(sock, MsgType::kReady, gen, &msg, sizeof(msg))) {
    ::munmap(arena, sizeof(Arena));
    ::close(sock);
    return false;
  }

  Arena* old_arena = arena_.exchange(arena, std::memory_order_acq_rel);
  const int old_sock = sock_.exchange(sock, std::memory_order_acq_rel);
  if (old_sock >= 0) ::close(old_sock);
  if (old_arena != nullptr) ::munmap(old_arena, sizeof(Arena));
  update_period_us_.store(ack.update_period_us, std::memory_order_relaxed);
  generation_.store(gen, std::memory_order_relaxed);

  // Back under gang gating: re-arm the gate the death path released.
  if (SignalGate::instance().released()) SignalGate::instance().rearm();
  unmanaged_.store(false, std::memory_order_relaxed);
  reattaches_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Client::updater_loop() {
  // Publishes the accumulated transaction count at the manager-requested
  // period. Deliberately NOT registered with the signal gate: the paper's
  // arena must stay fresh so the manager can always read a consistent
  // cumulative value.
  stats::Rng rng(reattach_.seed);
  while (!stop_updater_.load(std::memory_order_relaxed)) {
    Arena* arena = arena_.load(std::memory_order_relaxed);
    arena->transactions.store(total_transactions(),
                              std::memory_order_relaxed);
    arena->heartbeats.fetch_add(1, std::memory_order_relaxed);

    // Manager liveness: an EOF (or hard error) on the socket means the
    // manager is gone. Release the signal gate so no worker stays suspended
    // forever — the application free-runs under the kernel scheduler
    // (docs/ROBUSTNESS.md) and, with a reattach budget, retries the
    // connection against the manager's next generation.
    char probe = 0;
    const ssize_t n =
        faults::sys::recv(sock_.load(std::memory_order_relaxed), &probe, 1,
                          MSG_PEEK | MSG_DONTWAIT);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      unmanaged_.store(true, std::memory_order_relaxed);
      SignalGate::instance().release_all();
      if (reattach_.attempts <= 0) return;  // permanent free-run

      // Jittered-backoff reattach loop: the supervisor needs time to
      // restart the manager, and a herd of clients must not stampede the
      // fresh socket in lockstep.
      bool back = false;
      std::uint64_t backoff = reattach_.initial_backoff_us;
      for (int attempt = 0; attempt < reattach_.attempts; ++attempt) {
        if (try_reattach()) {
          back = true;
          break;
        }
        const double factor =
            1.0 + reattach_.jitter * (rng.uniform() - 0.5);
        const auto sleep_us = static_cast<std::uint64_t>(
            static_cast<double>(backoff) * (factor > 0.0 ? factor : 1.0));
        if (!interruptible_sleep_us(sleep_us)) return;
        backoff = std::min(
            static_cast<std::uint64_t>(static_cast<double>(backoff) *
                                       reattach_.multiplier),
            reattach_.max_backoff_us);
      }
      if (!back) return;  // budget spent: permanent free-run
      continue;           // reattached — resume publishing immediately
    }
    const std::uint64_t period_us =
        update_period_us_.load(std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::microseconds(period_us > 0 ? period_us : 100000));
  }
}

void Client::disconnect() {
  if (updater_.joinable()) {
    stop_updater_.store(true, std::memory_order_relaxed);
    updater_.join();
  }
  const int sock = sock_.exchange(-1, std::memory_order_acq_rel);
  if (sock >= 0) ::close(sock);
  Arena* arena = arena_.exchange(nullptr, std::memory_order_acq_rel);
  if (arena != nullptr) ::munmap(arena, sizeof(Arena));
}

}  // namespace bbsched::runtime
