#include "runtime/client.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/un.h>
#include <unistd.h>

#include "runtime/protocol.h"
#include "runtime/signal_gate.h"
#include "stats/rng.h"

namespace bbsched::runtime {

Client::~Client() { disconnect(); }

bool Client::connect(const std::string& socket_path, const std::string& name,
                     int nthreads, const ConnectRetry& retry) {
  stats::Rng rng(retry.seed);
  std::uint64_t backoff = retry.initial_backoff_us;
  for (int attempt = 0;; ++attempt) {
    if (connect(socket_path, name, nthreads)) {
      last_connect_retries_ = attempt;
      return true;
    }
    if (attempt + 1 >= retry.attempts) return false;
    // Jittered exponential backoff: sleep backoff * (1 ± jitter/2), then
    // grow the base toward the ceiling.
    const double factor = 1.0 + retry.jitter * (rng.uniform() - 0.5);
    const auto sleep_us = static_cast<std::uint64_t>(
        static_cast<double>(backoff) * (factor > 0.0 ? factor : 1.0));
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    backoff = std::min(
        static_cast<std::uint64_t>(static_cast<double>(backoff) *
                                   retry.multiplier),
        retry.max_backoff_us);
  }
}

bool Client::connect(const std::string& socket_path, const std::string& name,
                     int nthreads) {
  assert(sock_ < 0 && "already connected");
  assert(nthreads >= 1);

  SignalGate::instance().install();

  const int sock = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (sock < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    ::close(sock);
    return false;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(sock);
    return false;
  }

  HelloMsg hello{};
  hello.pid = ::getpid();
  // The connecting (leader) thread receives the manager's signals. Use the
  // caller's own tid — several clients can coexist in one process (each a
  // logical "application"), so the gate-wide leader is not necessarily us.
  hello.leader_tid =
      static_cast<std::int32_t>(::syscall(SYS_gettid));
  hello.nthreads = nthreads;
  std::strncpy(hello.name, name.c_str(), sizeof(hello.name) - 1);
  if (!send_all(sock, &hello, sizeof(hello))) {
    ::close(sock);
    return false;
  }

  HelloAck ack{};
  int arena_fd = -1;
  if (!recv_with_fd(sock, &ack, sizeof(ack), &arena_fd) ||
      ack.magic != kProtocolMagic || arena_fd < 0) {
    if (arena_fd >= 0) ::close(arena_fd);
    ::close(sock);
    return false;
  }

  void* mem = ::mmap(nullptr, sizeof(Arena), PROT_READ | PROT_WRITE,
                     MAP_SHARED, arena_fd, 0);
  ::close(arena_fd);  // the mapping keeps the memory alive
  if (mem == MAP_FAILED) {
    ::close(sock);
    return false;
  }

  arena_ = static_cast<Arena*>(mem);
  if (arena_->magic != Arena::kMagic) {
    ::munmap(mem, sizeof(Arena));
    arena_ = nullptr;
    ::close(sock);
    return false;
  }
  update_period_us_ = ack.update_period_us;
  nthreads_ = nthreads;
  sock_ = sock;
  unmanaged_.store(false, std::memory_order_relaxed);
  // Re-engage the gate in case a previous manager died and released it.
  if (SignalGate::instance().released()) SignalGate::instance().rearm();

  // The connecting thread is the leader worker: the manager signals it and
  // it forwards to siblings registered later.
  register_worker();
  return true;
}

int Client::register_worker() {
  SignalGate::instance().register_current_thread();
  const int slot = perfctr::global_counters().register_thread();
  {
    std::lock_guard<std::mutex> lk(mu_);
    counter_slots_.push_back(slot);
  }
  if (arena_ != nullptr) {
    arena_->threads_registered.fetch_add(1, std::memory_order_relaxed);
  }
  return slot;
}

void Client::unregister_worker() {
  SignalGate::instance().unregister_current_thread();
}

std::uint64_t Client::total_transactions() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (int slot : counter_slots_) {
    total += perfctr::global_counters().read(slot);
  }
  return total;
}

bool Client::ready() {
  if (sock_ < 0) return false;
  ReadyMsg msg{};
  if (!send_all(sock_, &msg, sizeof(msg))) return false;

  stop_updater_.store(false, std::memory_order_relaxed);
  updater_ = std::thread([this] { updater_loop(); });
  return true;
}

void Client::updater_loop() {
  // Publishes the accumulated transaction count at the manager-requested
  // period. Deliberately NOT registered with the signal gate: the paper's
  // arena must stay fresh so the manager can always read a consistent
  // cumulative value.
  const auto period =
      std::chrono::microseconds(update_period_us_ > 0 ? update_period_us_
                                                      : 100000);
  while (!stop_updater_.load(std::memory_order_relaxed)) {
    arena_->transactions.store(total_transactions(),
                               std::memory_order_relaxed);
    arena_->heartbeats.fetch_add(1, std::memory_order_relaxed);

    // Manager liveness: an EOF (or hard error) on the socket means the
    // manager is gone. Release the signal gate so no worker stays suspended
    // forever — the application free-runs under the kernel scheduler until
    // it reconnects (docs/ROBUSTNESS.md).
    char probe = 0;
    const ssize_t n =
        ::recv(sock_, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      unmanaged_.store(true, std::memory_order_relaxed);
      SignalGate::instance().release_all();
      return;  // nobody is reading the arena anymore
    }
    std::this_thread::sleep_for(period);
  }
}

void Client::disconnect() {
  if (updater_.joinable()) {
    stop_updater_.store(true, std::memory_order_relaxed);
    updater_.join();
  }
  if (sock_ >= 0) {
    ::close(sock_);
    sock_ = -1;
  }
  if (arena_ != nullptr) {
    ::munmap(arena_, sizeof(Arena));
    arena_ = nullptr;
  }
}

}  // namespace bbsched::runtime
