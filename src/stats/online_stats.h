// Online (single-pass) summary statistics.
//
// Used throughout the simulator and the benches to accumulate means,
// variances and extrema without storing samples. Welford's algorithm keeps
// the variance numerically stable for long runs (millions of ticks).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace bbsched::stats {

/// Single-pass accumulator for mean / variance / min / max.
///
/// Empty accumulators report mean() == 0 and variance() == 0 so callers can
/// print summaries without special-casing; use count() to detect emptiness.
class OnlineStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Merges another accumulator into this one (parallel-reduction friendly).
  void merge(const OnlineStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    n_ += other.n_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
  }

  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double sample_variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

  /// +inf / -inf when empty, mirroring the identity of min/max folds.
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  void reset() noexcept { *this = OnlineStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace bbsched::stats
