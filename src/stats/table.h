// Console table rendering for the benchmark harness.
//
// Every fig*/ablation_* bench prints the rows/series the paper reports using
// this renderer, so output formatting is consistent and greppable. Columns
// are right-aligned for numbers, left-aligned for labels, and the renderer
// also emits CSV so results can be post-processed.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace bbsched::stats {

/// Column-aligned text table with an optional title and CSV export.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before any add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a row; size must match the header (checked with assert).
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with fixed precision, passing strings through.
  static std::string num(double v, int precision = 2);
  /// Formats a percentage with sign, e.g. "+41.3%".
  static std::string pct(double v, int precision = 1);

  /// Renders the aligned table (with title and separator rules).
  void render(std::ostream& os) const;

  /// Renders as CSV (header + rows, comma-separated, quotes where needed).
  void render_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bbsched::stats
