// Deterministic pseudo-random number generation for simulations.
//
// All stochastic behaviour in the simulator (burst phases, Linux-scheduler
// tie-breaking, workload arrival jitter) is drawn from explicitly seeded
// generators so every experiment is exactly reproducible. We use
// splitmix64 for seeding and xoshiro256** as the main generator — small,
// fast, and far better distributed than std::minstd, without the size of
// std::mt19937.
#pragma once

#include <cstdint>
#include <limits>

namespace bbsched::stats {

/// splitmix64 step; used to expand a single seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — deterministic, seedable, UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n); n must be > 0. Uses rejection to stay unbiased.
  std::uint64_t below(std::uint64_t n) noexcept {
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Forks an independent stream (for per-thread generators).
  Rng fork() noexcept { return Rng((*this)() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace bbsched::stats
