// Fixed-capacity moving windows over bus-transaction-rate samples.
//
// The 'Quanta Window' policy (paper §4, Eq. 2) replaces the latest-quantum
// bandwidth reading with the arithmetic mean of a window of previous samples;
// the paper uses a 5-sample window, chosen so the distance between the
// observed transaction pattern and the moving average stays within ~5% for
// irregular applications (Raytrace, LU). The paper also notes that wider
// windows would need exponentially decaying weights to stay responsive —
// ExponentialAverage implements that variant for the ablation bench.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace bbsched::stats {

/// Ring-buffer moving average with O(1) push and query.
class MovingWindow {
 public:
  /// @param capacity window length in samples; must be >= 1.
  explicit MovingWindow(std::size_t capacity) : buf_(capacity, 0.0) {
    assert(capacity >= 1);
  }

  /// Appends a sample, evicting the oldest once the window is full.
  void push(double x) noexcept {
    if (size_ == buf_.size()) {
      sum_ -= buf_[head_];
    } else {
      ++size_;
    }
    buf_[head_] = x;
    sum_ += x;
    head_ = (head_ + 1) % buf_.size();
  }

  /// Mean of the currently held samples; 0 when empty.
  [[nodiscard]] double mean() const noexcept {
    if (size_ == 0) return 0.0;
    return sum_ / static_cast<double>(size_);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] bool full() const noexcept { return size_ == buf_.size(); }

  /// Most recent sample; 0 when empty (callers treat "no data" as idle).
  [[nodiscard]] double latest() const noexcept {
    if (size_ == 0) return 0.0;
    return buf_[(head_ + buf_.size() - 1) % buf_.size()];
  }

  void reset() noexcept {
    size_ = 0;
    head_ = 0;
    sum_ = 0.0;
  }

  /// Copies the held samples oldest-first into `out` (replacing its
  /// contents). Re-pushing them into an empty window of the same capacity
  /// rebuilds identical state — the journal snapshot/restore contract.
  void copy_samples(std::vector<double>& out) const {
    out.clear();
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(buf_[(head_ + buf_.size() - size_ + i) % buf_.size()]);
    }
  }

 private:
  std::vector<double> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  double sum_ = 0.0;  // running sum; re-derived error stays negligible at our scales
};

/// Exponentially weighted moving average: v <- (1-a)*v + a*x.
///
/// The first sample initialises the average directly so short histories are
/// not biased toward zero.
class ExponentialAverage {
 public:
  /// @param alpha weight of the newest sample, in (0, 1].
  explicit ExponentialAverage(double alpha) : alpha_(alpha) {
    assert(alpha > 0.0 && alpha <= 1.0);
  }

  void push(double x) noexcept {
    if (!seeded_) {
      value_ = x;
      seeded_ = true;
    } else {
      value_ += alpha_ * (x - value_);
    }
  }

  [[nodiscard]] double mean() const noexcept { return seeded_ ? value_ : 0.0; }
  [[nodiscard]] bool empty() const noexcept { return !seeded_; }

  void reset() noexcept {
    seeded_ = false;
    value_ = 0.0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

}  // namespace bbsched::stats
