// Small percentile / distribution helpers for experiment reporting.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace bbsched::stats {

/// Stores samples and answers percentile queries. Intended for modest sample
/// counts (per-experiment summaries), not for per-tick hot paths.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Linear-interpolated percentile, p in [0, 100]. Requires non-empty set.
  [[nodiscard]] double percentile(double p) const {
    assert(!samples_.empty());
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
  }

  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] double mean() const {
    assert(!samples_.empty());
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
  }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  void clear() noexcept { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

}  // namespace bbsched::stats
