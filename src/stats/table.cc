#include "stats/table.h"

#include <cassert>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace bbsched::stats {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  // Allow a trailing '%' (percent cells align like numbers).
  if (end != nullptr && *end == '%') ++end;
  return end != nullptr && *end == '\0';
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::set_header(std::vector<std::string> header) {
  assert(rows_.empty() && "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size() && "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(precision) << v << '%';
  return os.str();
}

void Table::render(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }

  if (!title_.empty()) os << "== " << title_ << " ==\n";

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = c > 0 && (rows_.empty() || looks_numeric(row[c]) ||
                                   row == header_);
      os << "  ";
      if (right) {
        os << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      } else {
        os << std::setw(static_cast<int>(width[c])) << std::left << row[c];
      }
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::render_csv(std::ostream& os) const {
  auto print_csv = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  print_csv(header_);
  for (const auto& row : rows_) print_csv(row);
}

}  // namespace bbsched::stats
