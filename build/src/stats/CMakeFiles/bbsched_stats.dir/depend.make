# Empty dependencies file for bbsched_stats.
# This may be replaced when dependencies are built.
