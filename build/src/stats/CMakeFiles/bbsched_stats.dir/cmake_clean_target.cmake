file(REMOVE_RECURSE
  "libbbsched_stats.a"
)
