file(REMOVE_RECURSE
  "CMakeFiles/bbsched_stats.dir/table.cc.o"
  "CMakeFiles/bbsched_stats.dir/table.cc.o.d"
  "libbbsched_stats.a"
  "libbbsched_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
