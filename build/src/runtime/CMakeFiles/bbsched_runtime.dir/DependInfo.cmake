
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/client.cc" "src/runtime/CMakeFiles/bbsched_runtime.dir/client.cc.o" "gcc" "src/runtime/CMakeFiles/bbsched_runtime.dir/client.cc.o.d"
  "/root/repo/src/runtime/manager_server.cc" "src/runtime/CMakeFiles/bbsched_runtime.dir/manager_server.cc.o" "gcc" "src/runtime/CMakeFiles/bbsched_runtime.dir/manager_server.cc.o.d"
  "/root/repo/src/runtime/microbench.cc" "src/runtime/CMakeFiles/bbsched_runtime.dir/microbench.cc.o" "gcc" "src/runtime/CMakeFiles/bbsched_runtime.dir/microbench.cc.o.d"
  "/root/repo/src/runtime/protocol.cc" "src/runtime/CMakeFiles/bbsched_runtime.dir/protocol.cc.o" "gcc" "src/runtime/CMakeFiles/bbsched_runtime.dir/protocol.cc.o.d"
  "/root/repo/src/runtime/signal_gate.cc" "src/runtime/CMakeFiles/bbsched_runtime.dir/signal_gate.cc.o" "gcc" "src/runtime/CMakeFiles/bbsched_runtime.dir/signal_gate.cc.o.d"
  "/root/repo/src/runtime/thread_pool.cc" "src/runtime/CMakeFiles/bbsched_runtime.dir/thread_pool.cc.o" "gcc" "src/runtime/CMakeFiles/bbsched_runtime.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bbsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/perfctr/CMakeFiles/bbsched_perfctr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bbsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bbsched_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bbsched_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
