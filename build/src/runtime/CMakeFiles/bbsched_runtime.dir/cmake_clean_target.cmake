file(REMOVE_RECURSE
  "libbbsched_runtime.a"
)
