file(REMOVE_RECURSE
  "CMakeFiles/bbsched_runtime.dir/client.cc.o"
  "CMakeFiles/bbsched_runtime.dir/client.cc.o.d"
  "CMakeFiles/bbsched_runtime.dir/manager_server.cc.o"
  "CMakeFiles/bbsched_runtime.dir/manager_server.cc.o.d"
  "CMakeFiles/bbsched_runtime.dir/microbench.cc.o"
  "CMakeFiles/bbsched_runtime.dir/microbench.cc.o.d"
  "CMakeFiles/bbsched_runtime.dir/protocol.cc.o"
  "CMakeFiles/bbsched_runtime.dir/protocol.cc.o.d"
  "CMakeFiles/bbsched_runtime.dir/signal_gate.cc.o"
  "CMakeFiles/bbsched_runtime.dir/signal_gate.cc.o.d"
  "CMakeFiles/bbsched_runtime.dir/thread_pool.cc.o"
  "CMakeFiles/bbsched_runtime.dir/thread_pool.cc.o.d"
  "libbbsched_runtime.a"
  "libbbsched_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
