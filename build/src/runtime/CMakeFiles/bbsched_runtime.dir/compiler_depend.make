# Empty compiler generated dependencies file for bbsched_runtime.
# This may be replaced when dependencies are built.
