# Empty dependencies file for bbsched_sim.
# This may be replaced when dependencies are built.
