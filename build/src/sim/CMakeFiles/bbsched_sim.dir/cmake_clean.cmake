file(REMOVE_RECURSE
  "CMakeFiles/bbsched_sim.dir/bus_model.cc.o"
  "CMakeFiles/bbsched_sim.dir/bus_model.cc.o.d"
  "CMakeFiles/bbsched_sim.dir/engine.cc.o"
  "CMakeFiles/bbsched_sim.dir/engine.cc.o.d"
  "CMakeFiles/bbsched_sim.dir/machine.cc.o"
  "CMakeFiles/bbsched_sim.dir/machine.cc.o.d"
  "libbbsched_sim.a"
  "libbbsched_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
