# Empty dependencies file for bbsched_linuxsched.
# This may be replaced when dependencies are built.
