file(REMOVE_RECURSE
  "libbbsched_linuxsched.a"
)
