file(REMOVE_RECURSE
  "CMakeFiles/bbsched_linuxsched.dir/linux_sched.cc.o"
  "CMakeFiles/bbsched_linuxsched.dir/linux_sched.cc.o.d"
  "libbbsched_linuxsched.a"
  "libbbsched_linuxsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_linuxsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
