# Empty dependencies file for bbsched_spacesched.
# This may be replaced when dependencies are built.
