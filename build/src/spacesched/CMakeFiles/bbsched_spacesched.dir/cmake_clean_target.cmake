file(REMOVE_RECURSE
  "libbbsched_spacesched.a"
)
