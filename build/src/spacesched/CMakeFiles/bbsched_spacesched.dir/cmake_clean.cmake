file(REMOVE_RECURSE
  "CMakeFiles/bbsched_spacesched.dir/equipartition.cc.o"
  "CMakeFiles/bbsched_spacesched.dir/equipartition.cc.o.d"
  "libbbsched_spacesched.a"
  "libbbsched_spacesched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_spacesched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
