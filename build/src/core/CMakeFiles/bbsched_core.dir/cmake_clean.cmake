file(REMOVE_RECURSE
  "CMakeFiles/bbsched_core.dir/cpu_manager.cc.o"
  "CMakeFiles/bbsched_core.dir/cpu_manager.cc.o.d"
  "CMakeFiles/bbsched_core.dir/election.cc.o"
  "CMakeFiles/bbsched_core.dir/election.cc.o.d"
  "CMakeFiles/bbsched_core.dir/managed_scheduler.cc.o"
  "CMakeFiles/bbsched_core.dir/managed_scheduler.cc.o.d"
  "CMakeFiles/bbsched_core.dir/predictor.cc.o"
  "CMakeFiles/bbsched_core.dir/predictor.cc.o.d"
  "libbbsched_core.a"
  "libbbsched_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
