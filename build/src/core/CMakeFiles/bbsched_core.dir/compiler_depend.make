# Empty compiler generated dependencies file for bbsched_core.
# This may be replaced when dependencies are built.
