# Empty compiler generated dependencies file for bbsched_trace.
# This may be replaced when dependencies are built.
