file(REMOVE_RECURSE
  "libbbsched_trace.a"
)
