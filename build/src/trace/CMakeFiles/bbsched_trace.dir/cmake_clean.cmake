file(REMOVE_RECURSE
  "CMakeFiles/bbsched_trace.dir/gantt.cc.o"
  "CMakeFiles/bbsched_trace.dir/gantt.cc.o.d"
  "CMakeFiles/bbsched_trace.dir/schedule_trace.cc.o"
  "CMakeFiles/bbsched_trace.dir/schedule_trace.cc.o.d"
  "libbbsched_trace.a"
  "libbbsched_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
