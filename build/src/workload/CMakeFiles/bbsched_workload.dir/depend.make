# Empty dependencies file for bbsched_workload.
# This may be replaced when dependencies are built.
