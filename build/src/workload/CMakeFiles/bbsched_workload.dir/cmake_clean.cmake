file(REMOVE_RECURSE
  "CMakeFiles/bbsched_workload.dir/app_profile.cc.o"
  "CMakeFiles/bbsched_workload.dir/app_profile.cc.o.d"
  "CMakeFiles/bbsched_workload.dir/trace_demand.cc.o"
  "CMakeFiles/bbsched_workload.dir/trace_demand.cc.o.d"
  "CMakeFiles/bbsched_workload.dir/workload.cc.o"
  "CMakeFiles/bbsched_workload.dir/workload.cc.o.d"
  "libbbsched_workload.a"
  "libbbsched_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
