
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_profile.cc" "src/workload/CMakeFiles/bbsched_workload.dir/app_profile.cc.o" "gcc" "src/workload/CMakeFiles/bbsched_workload.dir/app_profile.cc.o.d"
  "/root/repo/src/workload/trace_demand.cc" "src/workload/CMakeFiles/bbsched_workload.dir/trace_demand.cc.o" "gcc" "src/workload/CMakeFiles/bbsched_workload.dir/trace_demand.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/bbsched_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/bbsched_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/bbsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bbsched_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bbsched_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
