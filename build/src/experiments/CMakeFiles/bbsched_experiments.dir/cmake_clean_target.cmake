file(REMOVE_RECURSE
  "libbbsched_experiments.a"
)
