# Empty dependencies file for bbsched_experiments.
# This may be replaced when dependencies are built.
