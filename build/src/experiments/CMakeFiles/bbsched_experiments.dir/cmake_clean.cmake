file(REMOVE_RECURSE
  "CMakeFiles/bbsched_experiments.dir/fig1.cc.o"
  "CMakeFiles/bbsched_experiments.dir/fig1.cc.o.d"
  "CMakeFiles/bbsched_experiments.dir/fig2.cc.o"
  "CMakeFiles/bbsched_experiments.dir/fig2.cc.o.d"
  "CMakeFiles/bbsched_experiments.dir/parallel.cc.o"
  "CMakeFiles/bbsched_experiments.dir/parallel.cc.o.d"
  "CMakeFiles/bbsched_experiments.dir/runner.cc.o"
  "CMakeFiles/bbsched_experiments.dir/runner.cc.o.d"
  "CMakeFiles/bbsched_experiments.dir/sweep.cc.o"
  "CMakeFiles/bbsched_experiments.dir/sweep.cc.o.d"
  "libbbsched_experiments.a"
  "libbbsched_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
