file(REMOVE_RECURSE
  "CMakeFiles/bbsched_perfctr.dir/perf_event.cc.o"
  "CMakeFiles/bbsched_perfctr.dir/perf_event.cc.o.d"
  "libbbsched_perfctr.a"
  "libbbsched_perfctr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_perfctr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
