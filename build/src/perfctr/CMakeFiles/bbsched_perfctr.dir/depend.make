# Empty dependencies file for bbsched_perfctr.
# This may be replaced when dependencies are built.
