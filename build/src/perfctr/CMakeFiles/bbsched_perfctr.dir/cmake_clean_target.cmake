file(REMOVE_RECURSE
  "libbbsched_perfctr.a"
)
