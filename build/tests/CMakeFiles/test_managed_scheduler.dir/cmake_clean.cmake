file(REMOVE_RECURSE
  "CMakeFiles/test_managed_scheduler.dir/test_managed_scheduler.cc.o"
  "CMakeFiles/test_managed_scheduler.dir/test_managed_scheduler.cc.o.d"
  "test_managed_scheduler"
  "test_managed_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_managed_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
