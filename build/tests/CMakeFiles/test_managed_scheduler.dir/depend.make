# Empty dependencies file for test_managed_scheduler.
# This may be replaced when dependencies are built.
