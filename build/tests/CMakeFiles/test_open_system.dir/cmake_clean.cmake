file(REMOVE_RECURSE
  "CMakeFiles/test_open_system.dir/test_open_system.cc.o"
  "CMakeFiles/test_open_system.dir/test_open_system.cc.o.d"
  "test_open_system"
  "test_open_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_open_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
