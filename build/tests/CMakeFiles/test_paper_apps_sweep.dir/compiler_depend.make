# Empty compiler generated dependencies file for test_paper_apps_sweep.
# This may be replaced when dependencies are built.
