file(REMOVE_RECURSE
  "CMakeFiles/test_paper_apps_sweep.dir/test_paper_apps_sweep.cc.o"
  "CMakeFiles/test_paper_apps_sweep.dir/test_paper_apps_sweep.cc.o.d"
  "test_paper_apps_sweep"
  "test_paper_apps_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_apps_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
