file(REMOVE_RECURSE
  "CMakeFiles/test_runtime_protocol.dir/test_runtime_protocol.cc.o"
  "CMakeFiles/test_runtime_protocol.dir/test_runtime_protocol.cc.o.d"
  "test_runtime_protocol"
  "test_runtime_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runtime_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
