# Empty compiler generated dependencies file for test_runtime_protocol.
# This may be replaced when dependencies are built.
