
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_thread_pool.cc" "tests/CMakeFiles/test_thread_pool.dir/test_thread_pool.cc.o" "gcc" "tests/CMakeFiles/test_thread_pool.dir/test_thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/bbsched_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bbsched_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bbsched_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linuxsched/CMakeFiles/bbsched_linuxsched.dir/DependInfo.cmake"
  "/root/repo/build/src/spacesched/CMakeFiles/bbsched_spacesched.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bbsched_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/perfctr/CMakeFiles/bbsched_perfctr.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bbsched_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bbsched_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/bbsched_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
