# Empty dependencies file for test_cpu_manager.
# This may be replaced when dependencies are built.
