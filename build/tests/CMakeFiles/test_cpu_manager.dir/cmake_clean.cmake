file(REMOVE_RECURSE
  "CMakeFiles/test_cpu_manager.dir/test_cpu_manager.cc.o"
  "CMakeFiles/test_cpu_manager.dir/test_cpu_manager.cc.o.d"
  "test_cpu_manager"
  "test_cpu_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
