# Empty compiler generated dependencies file for test_fitness_election.
# This may be replaced when dependencies are built.
