file(REMOVE_RECURSE
  "CMakeFiles/test_fitness_election.dir/test_fitness_election.cc.o"
  "CMakeFiles/test_fitness_election.dir/test_fitness_election.cc.o.d"
  "test_fitness_election"
  "test_fitness_election.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fitness_election.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
