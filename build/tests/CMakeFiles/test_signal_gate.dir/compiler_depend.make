# Empty compiler generated dependencies file for test_signal_gate.
# This may be replaced when dependencies are built.
