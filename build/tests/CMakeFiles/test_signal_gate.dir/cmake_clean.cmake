file(REMOVE_RECURSE
  "CMakeFiles/test_signal_gate.dir/test_signal_gate.cc.o"
  "CMakeFiles/test_signal_gate.dir/test_signal_gate.cc.o.d"
  "test_signal_gate"
  "test_signal_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signal_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
