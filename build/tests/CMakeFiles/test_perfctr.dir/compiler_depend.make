# Empty compiler generated dependencies file for test_perfctr.
# This may be replaced when dependencies are built.
