file(REMOVE_RECURSE
  "CMakeFiles/test_equipartition.dir/test_equipartition.cc.o"
  "CMakeFiles/test_equipartition.dir/test_equipartition.cc.o.d"
  "test_equipartition"
  "test_equipartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equipartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
