# Empty compiler generated dependencies file for test_equipartition.
# This may be replaced when dependencies are built.
