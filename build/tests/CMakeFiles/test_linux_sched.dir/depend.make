# Empty dependencies file for test_linux_sched.
# This may be replaced when dependencies are built.
