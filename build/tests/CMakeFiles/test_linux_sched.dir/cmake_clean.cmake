file(REMOVE_RECURSE
  "CMakeFiles/test_linux_sched.dir/test_linux_sched.cc.o"
  "CMakeFiles/test_linux_sched.dir/test_linux_sched.cc.o.d"
  "test_linux_sched"
  "test_linux_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linux_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
