# Empty compiler generated dependencies file for test_tools_integration.
# This may be replaced when dependencies are built.
