file(REMOVE_RECURSE
  "CMakeFiles/test_tools_integration.dir/test_tools_integration.cc.o"
  "CMakeFiles/test_tools_integration.dir/test_tools_integration.cc.o.d"
  "test_tools_integration"
  "test_tools_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tools_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
