file(REMOVE_RECURSE
  "CMakeFiles/test_manager_server.dir/test_manager_server.cc.o"
  "CMakeFiles/test_manager_server.dir/test_manager_server.cc.o.d"
  "test_manager_server"
  "test_manager_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_manager_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
