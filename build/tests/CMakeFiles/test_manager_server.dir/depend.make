# Empty dependencies file for test_manager_server.
# This may be replaced when dependencies are built.
