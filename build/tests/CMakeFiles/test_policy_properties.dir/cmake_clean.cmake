file(REMOVE_RECURSE
  "CMakeFiles/test_policy_properties.dir/test_policy_properties.cc.o"
  "CMakeFiles/test_policy_properties.dir/test_policy_properties.cc.o.d"
  "test_policy_properties"
  "test_policy_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policy_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
