# Empty dependencies file for test_io_jobs.
# This may be replaced when dependencies are built.
