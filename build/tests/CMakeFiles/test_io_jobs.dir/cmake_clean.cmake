file(REMOVE_RECURSE
  "CMakeFiles/test_io_jobs.dir/test_io_jobs.cc.o"
  "CMakeFiles/test_io_jobs.dir/test_io_jobs.cc.o.d"
  "test_io_jobs"
  "test_io_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
