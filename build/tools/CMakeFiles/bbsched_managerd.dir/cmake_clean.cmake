file(REMOVE_RECURSE
  "CMakeFiles/bbsched_managerd.dir/bbsched_managerd.cc.o"
  "CMakeFiles/bbsched_managerd.dir/bbsched_managerd.cc.o.d"
  "bbsched_managerd"
  "bbsched_managerd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_managerd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
