# Empty compiler generated dependencies file for bbsched_managerd.
# This may be replaced when dependencies are built.
