# Empty compiler generated dependencies file for bbsched_kernel.
# This may be replaced when dependencies are built.
