file(REMOVE_RECURSE
  "CMakeFiles/bbsched_kernel.dir/bbsched_kernel.cc.o"
  "CMakeFiles/bbsched_kernel.dir/bbsched_kernel.cc.o.d"
  "bbsched_kernel"
  "bbsched_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbsched_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
