# Empty dependencies file for ablation_fitness.
# This may be replaced when dependencies are built.
