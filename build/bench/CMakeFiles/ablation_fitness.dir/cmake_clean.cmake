file(REMOVE_RECURSE
  "CMakeFiles/ablation_fitness.dir/ablation_fitness.cc.o"
  "CMakeFiles/ablation_fitness.dir/ablation_fitness.cc.o.d"
  "ablation_fitness"
  "ablation_fitness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fitness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
