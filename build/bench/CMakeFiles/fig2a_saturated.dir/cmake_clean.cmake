file(REMOVE_RECURSE
  "CMakeFiles/fig2a_saturated.dir/fig2a_saturated.cc.o"
  "CMakeFiles/fig2a_saturated.dir/fig2a_saturated.cc.o.d"
  "fig2a_saturated"
  "fig2a_saturated.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_saturated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
