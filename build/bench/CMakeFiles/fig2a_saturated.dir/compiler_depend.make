# Empty compiler generated dependencies file for fig2a_saturated.
# This may be replaced when dependencies are built.
