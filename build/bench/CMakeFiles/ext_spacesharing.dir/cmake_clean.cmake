file(REMOVE_RECURSE
  "CMakeFiles/ext_spacesharing.dir/ext_spacesharing.cc.o"
  "CMakeFiles/ext_spacesharing.dir/ext_spacesharing.cc.o.d"
  "ext_spacesharing"
  "ext_spacesharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_spacesharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
