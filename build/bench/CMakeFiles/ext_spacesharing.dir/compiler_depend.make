# Empty compiler generated dependencies file for ext_spacesharing.
# This may be replaced when dependencies are built.
