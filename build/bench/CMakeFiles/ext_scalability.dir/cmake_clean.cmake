file(REMOVE_RECURSE
  "CMakeFiles/ext_scalability.dir/ext_scalability.cc.o"
  "CMakeFiles/ext_scalability.dir/ext_scalability.cc.o.d"
  "ext_scalability"
  "ext_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
