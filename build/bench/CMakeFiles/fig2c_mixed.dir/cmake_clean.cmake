file(REMOVE_RECURSE
  "CMakeFiles/fig2c_mixed.dir/fig2c_mixed.cc.o"
  "CMakeFiles/fig2c_mixed.dir/fig2c_mixed.cc.o.d"
  "fig2c_mixed"
  "fig2c_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2c_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
