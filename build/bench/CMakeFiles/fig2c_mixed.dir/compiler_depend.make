# Empty compiler generated dependencies file for fig2c_mixed.
# This may be replaced when dependencies are built.
