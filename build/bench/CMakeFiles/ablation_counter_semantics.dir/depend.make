# Empty dependencies file for ablation_counter_semantics.
# This may be replaced when dependencies are built.
