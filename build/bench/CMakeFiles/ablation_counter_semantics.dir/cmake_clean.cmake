file(REMOVE_RECURSE
  "CMakeFiles/ablation_counter_semantics.dir/ablation_counter_semantics.cc.o"
  "CMakeFiles/ablation_counter_semantics.dir/ablation_counter_semantics.cc.o.d"
  "ablation_counter_semantics"
  "ablation_counter_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_counter_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
