# Empty compiler generated dependencies file for ext_io_workloads.
# This may be replaced when dependencies are built.
