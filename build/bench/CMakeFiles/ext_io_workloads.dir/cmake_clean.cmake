file(REMOVE_RECURSE
  "CMakeFiles/ext_io_workloads.dir/ext_io_workloads.cc.o"
  "CMakeFiles/ext_io_workloads.dir/ext_io_workloads.cc.o.d"
  "ext_io_workloads"
  "ext_io_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_io_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
