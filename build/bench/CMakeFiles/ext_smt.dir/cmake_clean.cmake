file(REMOVE_RECURSE
  "CMakeFiles/ext_smt.dir/ext_smt.cc.o"
  "CMakeFiles/ext_smt.dir/ext_smt.cc.o.d"
  "ext_smt"
  "ext_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
