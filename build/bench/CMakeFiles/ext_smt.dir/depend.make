# Empty dependencies file for ext_smt.
# This may be replaced when dependencies are built.
