# Empty compiler generated dependencies file for fig1a_bus_transactions.
# This may be replaced when dependencies are built.
