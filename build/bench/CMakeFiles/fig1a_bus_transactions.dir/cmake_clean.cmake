file(REMOVE_RECURSE
  "CMakeFiles/fig1a_bus_transactions.dir/fig1a_bus_transactions.cc.o"
  "CMakeFiles/fig1a_bus_transactions.dir/fig1a_bus_transactions.cc.o.d"
  "fig1a_bus_transactions"
  "fig1a_bus_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_bus_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
