file(REMOVE_RECURSE
  "CMakeFiles/ext_predictive.dir/ext_predictive.cc.o"
  "CMakeFiles/ext_predictive.dir/ext_predictive.cc.o.d"
  "ext_predictive"
  "ext_predictive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
