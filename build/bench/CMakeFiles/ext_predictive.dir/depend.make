# Empty dependencies file for ext_predictive.
# This may be replaced when dependencies are built.
