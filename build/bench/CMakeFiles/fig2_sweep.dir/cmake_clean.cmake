file(REMOVE_RECURSE
  "CMakeFiles/fig2_sweep.dir/fig2_sweep.cc.o"
  "CMakeFiles/fig2_sweep.dir/fig2_sweep.cc.o.d"
  "fig2_sweep"
  "fig2_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
