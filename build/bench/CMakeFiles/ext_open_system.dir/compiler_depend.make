# Empty compiler generated dependencies file for ext_open_system.
# This may be replaced when dependencies are built.
