file(REMOVE_RECURSE
  "CMakeFiles/ext_open_system.dir/ext_open_system.cc.o"
  "CMakeFiles/ext_open_system.dir/ext_open_system.cc.o.d"
  "ext_open_system"
  "ext_open_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_open_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
