# Empty compiler generated dependencies file for fig2b_idle_bus.
# This may be replaced when dependencies are built.
