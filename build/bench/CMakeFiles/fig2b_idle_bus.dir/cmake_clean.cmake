file(REMOVE_RECURSE
  "CMakeFiles/fig2b_idle_bus.dir/fig2b_idle_bus.cc.o"
  "CMakeFiles/fig2b_idle_bus.dir/fig2b_idle_bus.cc.o.d"
  "fig2b_idle_bus"
  "fig2b_idle_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_idle_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
