# Empty dependencies file for perf_ticks.
# This may be replaced when dependencies are built.
