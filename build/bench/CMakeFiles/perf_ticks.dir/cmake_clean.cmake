file(REMOVE_RECURSE
  "CMakeFiles/perf_ticks.dir/perf_ticks.cc.o"
  "CMakeFiles/perf_ticks.dir/perf_ticks.cc.o.d"
  "perf_ticks"
  "perf_ticks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_ticks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
