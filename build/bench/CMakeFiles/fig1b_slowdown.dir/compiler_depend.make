# Empty compiler generated dependencies file for fig1b_slowdown.
# This may be replaced when dependencies are built.
