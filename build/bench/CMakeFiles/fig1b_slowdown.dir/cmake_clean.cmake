file(REMOVE_RECURSE
  "CMakeFiles/fig1b_slowdown.dir/fig1b_slowdown.cc.o"
  "CMakeFiles/fig1b_slowdown.dir/fig1b_slowdown.cc.o.d"
  "fig1b_slowdown"
  "fig1b_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
