# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(perf_ticks_smoke "/root/repo/build/bench/perf_ticks" "--smoke")
set_tests_properties(perf_ticks_smoke PROPERTIES  LABELS "perf_smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
