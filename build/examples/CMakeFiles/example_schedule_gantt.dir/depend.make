# Empty dependencies file for example_schedule_gantt.
# This may be replaced when dependencies are built.
