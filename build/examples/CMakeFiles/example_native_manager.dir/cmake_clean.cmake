file(REMOVE_RECURSE
  "CMakeFiles/example_native_manager.dir/native_manager.cpp.o"
  "CMakeFiles/example_native_manager.dir/native_manager.cpp.o.d"
  "native_manager"
  "native_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_native_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
