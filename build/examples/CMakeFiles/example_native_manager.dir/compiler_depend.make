# Empty compiler generated dependencies file for example_native_manager.
# This may be replaced when dependencies are built.
