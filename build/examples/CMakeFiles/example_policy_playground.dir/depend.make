# Empty dependencies file for example_policy_playground.
# This may be replaced when dependencies are built.
