// Offline optimal co-schedule solver (experiments/opt_solve.h) as a CLI.
//
// Default mode builds a small reservation-style mix (or a Fig. 2 set for
// --app=NAME), prints the certified lower bounds, and the optimal batch
// co-schedule under the analytic contention model with its value.
//
// Usage: opt_solve [--app=NAME] [--procs=N] [--scale=X] [--csv]
//        opt_solve --self-check
//
// --self-check runs the embedded fixture suite (subset-DP vs brute-force
// cross-check, bound sanity) and exits non-zero on any mismatch; ctest and
// tools/check.sh wire this in.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/cli.h"
#include "experiments/opt_solve.h"
#include "stats/table.h"
#include "workload/app_profile.h"
#include "workload/workload.h"

namespace {

using bbsched::experiments::OptApp;
using bbsched::experiments::OptBounds;
using bbsched::experiments::OptInstance;
using bbsched::experiments::OptObjective;
using bbsched::experiments::OptSchedule;

OptInstance synthetic(std::vector<OptApp> apps, int nprocs) {
  OptInstance inst;
  inst.apps = std::move(apps);
  inst.nprocs = nprocs;
  return inst;  // default BusConfig: the calibrated paper bus
}

bool close(double a, double b, double rel = 1e-6) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= rel * scale;
}

int fail(const std::string& what, double got, double want) {
  std::cerr << "self-check FAILED: " << what << " (got " << got << ", want "
            << want << ")\n";
  return 1;
}

/// DP-vs-brute-force and bound sanity over a fixture instance.
int check_instance(const std::string& name, const OptInstance& inst) {
  using bbsched::experiments::brute_force;
  using bbsched::experiments::certified_bounds;
  using bbsched::experiments::solve_batches;
  int failures = 0;
  for (const OptObjective obj :
       {OptObjective::kMakespan, OptObjective::kMeanTurnaround}) {
    const OptSchedule dp = solve_batches(inst, obj);
    const OptSchedule bf = brute_force(inst, obj);
    const double dp_value = obj == OptObjective::kMakespan
                                ? dp.makespan_us
                                : dp.mean_turnaround_us;
    const double bf_value = obj == OptObjective::kMakespan
                                ? bf.makespan_us
                                : bf.mean_turnaround_us;
    if (!close(dp_value, bf_value)) {
      failures += fail(name + ": DP vs brute force", dp_value, bf_value);
    }
    const OptBounds bounds = certified_bounds(inst);
    const double bound = obj == OptObjective::kMakespan
                             ? bounds.makespan_lb_us
                             : bounds.mean_turnaround_lb_us;
    if (dp_value < bound * (1.0 - 1e-9)) {
      failures += fail(name + ": certified bound exceeds the model optimum",
                       dp_value, bound);
    }
  }
  return failures;
}

int self_check() {
  int failures = 0;

  // Zero-demand single app: no contention at all, makespan == work exactly.
  {
    const OptInstance inst =
        synthetic({{"solo", 2, 1000.0, 0.0, 1.0}}, 4);
    const OptSchedule dp = bbsched::experiments::solve_batches(
        inst, OptObjective::kMakespan);
    if (!close(dp.makespan_us, 1000.0, 1e-12)) {
      failures += fail("solo zero-demand makespan", dp.makespan_us, 1000.0);
    }
  }

  failures += check_instance(
      "two-light",
      synthetic({{"a", 2, 1000.0, 1.0, 1.0}, {"b", 2, 800.0, 2.0, 1.0}}, 4));
  failures += check_instance(
      "heavy-pair",
      synthetic({{"hog", 2, 500.0, 11.8, 1.0},
                 {"lean", 2, 700.0, 0.5, 1.0},
                 {"mid", 1, 900.0, 6.0, 1.0}},
                4));
  failures += check_instance(
      "thread-heterogeneous",
      synthetic({{"wide", 3, 400.0, 4.0, 1.0},
                 {"narrow", 1, 1200.0, 9.0, 1.0},
                 {"pair", 2, 600.0, 2.5, 1.0},
                 {"solo", 1, 300.0, 0.1, 1.0}},
                4));
  failures += check_instance(
      "streamer-weighted",
      synthetic({{"bbma-ish", 1, 600.0, 23.6, 1.6},
                 {"app", 2, 900.0, 5.0, 1.0},
                 {"idle-ish", 1, 500.0, 0.0037, 1.0}},
                4));

  // A paper workload end to end: Fig. 2 mixed set for SP (backgrounds are
  // infinite and must be skipped by make_instance).
  {
    const auto& app = bbsched::workload::paper_application("SP");
    bbsched::sim::MachineConfig machine;
    const auto w = bbsched::workload::fig2_mixed(app, machine.bus);
    const OptInstance inst =
        bbsched::experiments::make_instance(w, machine, 0.01);
    if (inst.apps.size() != w.measured.size()) {
      failures += fail("fig2 instance app count",
                       static_cast<double>(inst.apps.size()),
                       static_cast<double>(w.measured.size()));
    } else {
      failures += check_instance("fig2-mixed-SP", inst);
    }
  }

  if (failures == 0) {
    std::cout << "opt_solve self-check: all fixtures OK\n";
    return 0;
  }
  std::cerr << "opt_solve self-check: " << failures << " failure(s)\n";
  return 1;
}

std::string describe(const OptSchedule& s, const OptInstance& inst) {
  std::ostringstream os;
  for (std::size_t b = 0; b < s.batches.size(); ++b) {
    if (b > 0) os << " | ";
    for (std::size_t i = 0; i < s.batches[b].size(); ++i) {
      if (i > 0) os << '+';
      os << inst.apps[static_cast<std::size_t>(s.batches[b][i])].name;
    }
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bbsched;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--self-check") return self_check();
  }
  const auto opt = experiments::parse_cli(argc, argv);
  int nprocs = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--procs=", 0) == 0) nprocs = std::stoi(arg.substr(8));
  }

  sim::MachineConfig machine;
  machine.num_cpus = nprocs;

  workload::Workload w;
  if (!opt.app.empty()) {
    w = workload::fig2_mixed(workload::paper_application(opt.app),
                             machine.bus);
  } else {
    // A reservation-style mix: two finite streamer instances plus two
    // ordinary applications (the shape bench/ext_qos sweeps).
    w.name = "qos-demo";
    w.jobs.push_back(workload::make_app_job(
        workload::paper_application("SP"), machine.bus, 2));
    w.jobs.push_back(workload::make_app_job(
        workload::paper_application("CG"), machine.bus, 2));
    w.jobs.push_back(workload::make_app_job(
        workload::paper_application("Radiosity"), machine.bus, 2));
    w.jobs.push_back(workload::make_app_job(
        workload::paper_application("MG"), machine.bus, 2));
    w.measured = {0, 1, 2, 3};
  }

  const double scale = opt.time_scale == 1.0 ? 0.02 : opt.time_scale;
  const experiments::OptInstance inst =
      experiments::make_instance(w, machine, scale);
  const experiments::OptBounds bounds = experiments::certified_bounds(inst);
  const experiments::OptSchedule best_mean = experiments::solve_batches(
      inst, experiments::OptObjective::kMeanTurnaround);
  const experiments::OptSchedule best_span =
      experiments::solve_batches(inst, experiments::OptObjective::kMakespan);

  stats::Table table("Offline optimum — " + w.name + " (" +
                     std::to_string(inst.apps.size()) + " apps, " +
                     std::to_string(nprocs) + " procs, scale " +
                     stats::Table::num(scale) + ")");
  table.set_header({"quantity", "certified LB (s)", "batch-DP opt (s)",
                    "optimal batches"});
  table.add_row({"mean turnaround",
                 stats::Table::num(bounds.mean_turnaround_lb_us / 1e6, 4),
                 stats::Table::num(best_mean.mean_turnaround_us / 1e6, 4),
                 describe(best_mean, inst)});
  table.add_row({"makespan",
                 stats::Table::num(bounds.makespan_lb_us / 1e6, 4),
                 stats::Table::num(best_span.makespan_us / 1e6, 4),
                 describe(best_span, inst)});
  table.render(std::cout);
  if (opt.csv) table.render_csv(std::cout);
  std::cout << "\nThe certified LB holds for every scheduler on every run; "
               "the batch-DP value is\nthe optimum over gang-batch "
               "schedules under the analytic contention model.\n";
  return 0;
}
