// Validates an emitted observability trace without external tooling:
//
//   trace_validate FILE        Chrome trace JSON (the --trace-out default)
//   trace_validate FILE.jsonl  JSONL (line format; each line must parse)
//
// For Chrome traces it checks that the document parses as JSON, that
// "traceEvents" is an array, and that every scheduling quantum is covered:
// each QuantumStart instant is accompanied by at least one ElectionDecision
// at the same timestamp, and at least one BusResolution counter sample lands
// in every inter-quantum interval (the interval after the final quantum is
// exempt — a run may end on a quantum boundary). Re-elections inside one
// quantum (e.g. after a disconnect) emit QuantumStarts with duplicate
// timestamps; those merge into one interval. BusResolution coverage is only
// enforced when the trace contains bus samples at all: the live manager
// server traces elections but has no simulated bus to sample.
//
// Crash-recovery traces (docs/ROBUSTNESS.md §7) add a pairing rule: every
// Reattach event adopts state restored by a manager restart, so its
// generation must have been announced by an earlier Recovery event with the
// same generation. Exit code 0 = valid, 1 = validation failure, 2 =
// usage/IO error.
//
// This is the checker behind the `obs_smoke` and `soak` ctest labels.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace {

using bbsched::obs::json::Value;

int validate_jsonl(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;
  std::map<std::string, std::size_t> counts;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    Value v;
    std::string err;
    if (!bbsched::obs::json::parse(line, v, &err)) {
      std::fprintf(stderr, "line %zu: %s\n", lineno, err.c_str());
      return 1;
    }
    if (!v.is_object() || v.find("t") == nullptr ||
        v.find("type") == nullptr) {
      std::fprintf(stderr, "line %zu: not an event object\n", lineno);
      return 1;
    }
    ++counts[v.string_or("type", "?")];
  }
  // A stream that stopped for any reason other than end-of-file lost data
  // mid-read; that is an I/O error (2), not a verdict about the trace (1).
  if (in.bad() || (in.fail() && !in.eof())) {
    std::fprintf(stderr, "read error after line %zu\n", lineno);
    return 2;
  }
  if (counts.empty()) {
    std::fprintf(stderr, "no events\n");
    return 1;
  }
  std::printf("valid JSONL trace, %zu lines\n", lineno);
  for (const auto& [type, n] : counts) {
    std::printf("  %-18s %zu\n", type.c_str(), n);
  }
  return 0;
}

int validate_chrome(const std::string& text) {
  Value doc;
  std::string err;
  if (!bbsched::obs::json::parse(text, doc, &err)) {
    std::fprintf(stderr, "parse error: %s\n", err.c_str());
    return 1;
  }
  const Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "missing traceEvents array\n");
    return 1;
  }

  std::vector<double> quantum_ts;
  std::vector<double> contested_ts;  ///< quantum starts with candidates > 0
  std::vector<double> election_ts;
  std::vector<double> bus_ts;
  struct GenEvent {
    double ts;
    double generation;
  };
  std::vector<GenEvent> recoveries;
  std::vector<GenEvent> reattaches;
  std::map<std::string, std::size_t> counts;
  for (const Value& e : events->array) {
    if (!e.is_object()) {
      std::fprintf(stderr, "traceEvents entry is not an object\n");
      return 1;
    }
    const std::string name = e.string_or("name", "");
    const std::string ph = e.string_or("ph", "");
    if (ph == "M") continue;  // metadata carries no timestamp
    if (e.find("ts") == nullptr) {
      std::fprintf(stderr, "event \"%s\" lacks a ts\n", name.c_str());
      return 1;
    }
    const double ts = e.number_or("ts", 0.0);
    ++counts[name == "QuantumStart" || name == "ElectionDecision" ||
                     name == "BusResolution" || name == "JobStateChange" ||
                     name == "CounterSample" || name == "Fault" ||
                     name == "DegradationChange" || name == "Recovery" ||
                     name == "Reattach" || name == "SupervisorRestart"
                 ? name
                 : (ph == "X" ? "occupancy slice" : "other")];
    if (name == "QuantumStart") {
      quantum_ts.push_back(ts);
      // An idle manager (live server, no connected apps yet) legitimately
      // starts quanta with nothing to elect; remember which timestamps had
      // actual candidates so only those require ElectionDecision events.
      const Value* args = e.find("args");
      if (args != nullptr && args->number_or("candidates", 0.0) > 0.0) {
        contested_ts.push_back(ts);
      }
    }
    if (name == "ElectionDecision") election_ts.push_back(ts);
    if (name == "BusResolution") bus_ts.push_back(ts);
    if (name == "Recovery" || name == "Reattach") {
      const Value* args = e.find("args");
      if (args == nullptr || args->find("generation") == nullptr) {
        std::fprintf(stderr, "%s event lacks args.generation\n",
                     name.c_str());
        return 1;
      }
      const GenEvent ge{ts, args->number_or("generation", -1.0)};
      (name == "Recovery" ? recoveries : reattaches).push_back(ge);
    }
  }

  if (quantum_ts.empty()) {
    std::fprintf(stderr, "no QuantumStart events — was a managed scheduler "
                         "traced?\n");
    return 1;
  }
  std::sort(quantum_ts.begin(), quantum_ts.end());
  quantum_ts.erase(std::unique(quantum_ts.begin(), quantum_ts.end()),
                   quantum_ts.end());
  std::sort(contested_ts.begin(), contested_ts.end());
  std::sort(election_ts.begin(), election_ts.end());
  std::sort(bus_ts.begin(), bus_ts.end());

  for (std::size_t i = 0; i < quantum_ts.size(); ++i) {
    const double start = quantum_ts[i];
    // Every contested election emits its decisions at the quantum-start
    // timestamp; quanta with zero candidates have nothing to decide.
    const bool has_election =
        std::binary_search(election_ts.begin(), election_ts.end(), start) ||
        !std::binary_search(contested_ts.begin(), contested_ts.end(), start);
    if (!has_election) {
      std::fprintf(stderr,
                   "quantum at ts=%.0f has no ElectionDecision events\n",
                   start);
      return 1;
    }
    // The bus resolves every tick, so each inter-quantum interval must hold
    // at least one sample; after the final quantum the run may simply end.
    // A live-manager trace has no simulated bus at all — skip when empty.
    if (!bus_ts.empty() && i + 1 < quantum_ts.size()) {
      const double next = quantum_ts[i + 1];
      const auto lo = std::lower_bound(bus_ts.begin(), bus_ts.end(), start);
      if (lo == bus_ts.end() || *lo >= next) {
        std::fprintf(
            stderr,
            "no BusResolution sample in quantum interval [%.0f, %.0f)\n",
            start, next);
        return 1;
      }
    }
  }

  // Recovery/Reattach pairing: adopted state can only come from a restart
  // that announced the same generation beforehand.
  for (const GenEvent& ra : reattaches) {
    const bool paired = std::any_of(
        recoveries.begin(), recoveries.end(), [&](const GenEvent& rc) {
          return rc.generation == ra.generation && rc.ts <= ra.ts;
        });
    if (!paired) {
      std::fprintf(stderr,
                   "Reattach at ts=%.0f (generation %.0f) has no preceding "
                   "Recovery with that generation\n",
                   ra.ts, ra.generation);
      return 1;
    }
  }

  std::printf("valid Chrome trace, %zu events, %zu quanta covered\n",
              events->array.size(), quantum_ts.size());
  for (const auto& [type, n] : counts) {
    std::printf("  %-18s %zu\n", type.c_str(), n);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_validate FILE[.jsonl]\n");
    return 2;
  }
  const std::string path = argv[1];
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    std::fprintf(stderr, "%s is a directory\n", path.c_str());
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  if (jsonl) return validate_jsonl(in);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    std::fprintf(stderr, "read error on %s\n", path.c_str());
    return 2;
  }
  return validate_chrome(buf.str());
}
