// bbsched-kernel — run one of the paper's microbenchmark kernels (or a
// synthetic application) as its own PROCESS under the bbsched-managerd
// daemon, mirroring the paper's setup of independent applications
// connecting to the CPU manager.
//
// Usage:
//   bbsched_kernel --kind=bbma|nbbma|synthetic [--socket=/tmp/bbsched.sock]
//                  [--name=NAME] [--tps=9.3] [--seconds=10] [--threads=1]
//
// Exit code 0: connected, ran, disconnected cleanly.
// Exit code 1: could not reach the manager.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "runtime/client.h"
#include "runtime/microbench.h"

int main(int argc, char** argv) {
  using namespace bbsched;

  std::string socket_path = "/tmp/bbsched.sock";
  std::string kind = "synthetic";
  std::string name;
  double tps = 9.3;
  double seconds = 10.0;
  int threads = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) socket_path = arg.substr(9);
    else if (arg.rfind("--kind=", 0) == 0) kind = arg.substr(7);
    else if (arg.rfind("--name=", 0) == 0) name = arg.substr(7);
    else if (arg.rfind("--tps=", 0) == 0) tps = std::stod(arg.substr(6));
    else if (arg.rfind("--seconds=", 0) == 0) seconds = std::stod(arg.substr(10));
    else if (arg.rfind("--threads=", 0) == 0) threads = std::atoi(arg.c_str() + 10);
    else if (arg == "--help" || arg == "-h") {
      std::printf("bbsched_kernel --kind=bbma|nbbma|synthetic "
                  "[--socket=PATH] [--name=N] [--tps=X] [--seconds=S] "
                  "[--threads=N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (name.empty()) name = kind;
  if (threads < 1) threads = 1;

  runtime::Client client;
  if (!client.connect(socket_path, name, threads)) {
    std::fprintf(stderr, "%s: manager unreachable at %s\n", name.c_str(),
                 socket_path.c_str());
    return 1;
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  std::vector<runtime::KernelStats> stats(
      static_cast<std::size_t>(threads));

  auto kernel_main = [&](int slot, std::size_t out_idx, bool leader) {
    runtime::KernelStats st;
    if (kind == "bbma") {
      st = runtime::run_bbma(stop, slot);
    } else if (kind == "nbbma") {
      st = runtime::run_nbbma(stop, slot);
    } else {
      st = runtime::run_synthetic(stop, slot, tps);
    }
    stats[out_idx] = st;
    if (!leader) client.unregister_worker();
  };

  // The connecting thread is worker 0; extra workers register themselves.
  for (int t = 1; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const int slot = client.register_worker();
      kernel_main(slot, static_cast<std::size_t>(t), false);
    });
  }
  client.ready();

  std::thread timer([&] {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    stop.store(true);
  });
  kernel_main(client.leader_counter_slot(), 0, true);

  timer.join();
  for (auto& w : workers) w.join();

  std::uint64_t tx = 0;
  std::uint64_t sweeps = 0;
  for (const auto& st : stats) {
    tx += st.transactions;
    sweeps += st.iterations;
  }
  std::printf("%s: %llu sweeps, %llu transactions in %.1f s (%.2f trans/us)\n",
              name.c_str(), static_cast<unsigned long long>(sweeps),
              static_cast<unsigned long long>(tx), seconds,
              static_cast<double>(tx) / (seconds * 1e6));

  client.unregister_worker();
  client.disconnect();
  return 0;
}
