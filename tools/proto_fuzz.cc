// Structure-aware protocol fuzzer for the manager's UNIX-socket trust
// boundary (docs/ROBUSTNESS.md §8).
//
// Unlike a blind byte fuzzer, this one knows protocol v2's framing: it
// starts from a corpus of *valid* frames (kHello, kReattach, kReady, plus
// the two server->client types sent in the wrong direction) and mutates
// them field-by-field — magic, version, type, payload_len, generation,
// payload bytes — plus truncation, trailing junk, and all-zero frames.
// Every mutant is delivered over a fresh connection to a live in-process
// ManagerServer.
//
// Invariants checked (any violation exits non-zero):
//   1. No crash: the manager answers an honest handshake after the storm.
//   2. No fd leak: /proc/self/fd is the same size before and after.
//   3. No mis-accounting: every connection lands in exactly one typed
//      outcome — an accepted HelloAck or a server fault/overload counter —
//      so accepted + faults >= connections issued.
//
// Deterministic per --seed. Bounded mode (--frames=N) is the ctest smoke;
// unbounded mode (--seconds=N) keeps fuzzing a rotating seed for soak runs:
//   proto_fuzz --frames=100000 --seed=7
//   proto_fuzz --seconds=600

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/metrics.h"
#include "runtime/manager_server.h"
#include "runtime/protocol.h"
#include "stats/rng.h"

namespace {

using namespace bbsched;
using runtime::HelloMsg;
using runtime::MsgHeader;
using runtime::MsgType;

struct Options {
  std::uint64_t seed = 1;
  int frames = 2000;
  int seconds = 0;  ///< > 0: wall-clock soak mode, overrides frames
  bool verbose = false;
};

int count_open_fds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int n = 0;
  while (const dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++n;
  }
  ::closedir(dir);
  return n - 1;  // exclude the fd opendir itself holds
}

int dial(const std::string& path) {
  const int sock = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (sock < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(sock, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(sock);
    return -1;
  }
  timeval tv{};
  tv.tv_sec = 2;  // the fuzzer must outlive the server's handshake timeout
  ::setsockopt(sock, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return sock;
}

std::vector<unsigned char> frame_bytes(MsgType type, std::uint32_t generation,
                                       const void* payload, std::size_t len) {
  MsgHeader hdr{};
  hdr.type = static_cast<std::uint16_t>(type);
  hdr.payload_len = static_cast<std::uint32_t>(len);
  hdr.generation = generation;
  std::vector<unsigned char> out(sizeof(hdr) + len);
  std::memcpy(out.data(), &hdr, sizeof(hdr));
  if (len > 0) std::memcpy(out.data() + sizeof(hdr), payload, len);
  return out;
}

/// Valid-frame seed corpus: the mutation engine only ever starts from a
/// frame the manager would genuinely accept (or at worst classify as
/// wrong-direction), so mutants probe *specific* validation branches
/// instead of dying at the magic check every time.
std::vector<std::vector<unsigned char>> seed_corpus() {
  std::vector<std::vector<unsigned char>> corpus;
  HelloMsg hello{};
  hello.pid = ::getpid();
  hello.leader_tid = static_cast<std::int32_t>(::syscall(SYS_gettid));
  hello.nthreads = 1;
  std::strncpy(hello.name, "fuzz", sizeof(hello.name) - 1);
  corpus.push_back(frame_bytes(MsgType::kHello, 0, &hello, sizeof(hello)));
  corpus.push_back(frame_bytes(MsgType::kReattach, 0, &hello, sizeof(hello)));
  runtime::ReadyMsg ready{};
  corpus.push_back(frame_bytes(MsgType::kReady, 0, &ready, sizeof(ready)));
  runtime::HelloAck ack{};
  corpus.push_back(frame_bytes(MsgType::kHelloAck, 0, &ack, sizeof(ack)));
  runtime::HelloNackMsg nack{};
  corpus.push_back(frame_bytes(MsgType::kHelloNack, 0, &nack, sizeof(nack)));
  return corpus;
}

/// Field-aware mutation. Returns the bytes to send (possibly shorter than
/// a full frame: a truncation mutant).
std::vector<unsigned char> mutate(const std::vector<unsigned char>& base,
                                  stats::Rng& rng) {
  std::vector<unsigned char> out = base;
  auto* hdr = reinterpret_cast<MsgHeader*>(out.data());
  switch (rng() % 10) {
    case 0: {  // single bit flip anywhere
      const std::size_t byte = rng() % out.size();
      out[byte] ^= static_cast<unsigned char>(1U << (rng() % 8));
      break;
    }
    case 1:  // bad magic
      hdr->magic = static_cast<std::uint32_t>(rng());
      break;
    case 2:  // bad version
      hdr->version = static_cast<std::uint16_t>(rng());
      break;
    case 3:  // unknown / shuffled type
      hdr->type = static_cast<std::uint16_t>(rng() % 16);
      break;
    case 4:  // lying payload length
      hdr->payload_len = static_cast<std::uint32_t>(rng() % 4096);
      break;
    case 5:  // epoch confusion
      hdr->generation = static_cast<std::uint32_t>(rng());
      break;
    case 6: {  // truncation: every prefix length is reachable over seeds
      const std::size_t keep = rng() % out.size();
      out.resize(keep);
      break;
    }
    case 7: {  // trailing junk after a valid frame
      const std::size_t extra = 1 + rng() % 64;
      for (std::size_t i = 0; i < extra; ++i) {
        out.push_back(static_cast<unsigned char>(rng()));
      }
      break;
    }
    case 8:  // all-zero frame of the original size
      std::fill(out.begin(), out.end(), 0);
      break;
    default: {  // payload scribble (header intact)
      if (out.size() > sizeof(MsgHeader)) {
        const std::size_t span = out.size() - sizeof(MsgHeader);
        const std::size_t at = sizeof(MsgHeader) + rng() % span;
        for (std::size_t i = at; i < out.size(); ++i) {
          out[i] = static_cast<unsigned char>(rng());
        }
      }
      break;
    }
  }
  return out;
}

/// Sum of every typed outcome the server can assign a connection.
double outcome_total(const obs::MetricsRegistry& metrics, double* accepted) {
  auto value = [&](const char* name) {
    const obs::Counter* c = metrics.find_counter(name);
    return c != nullptr ? c->value() : 0.0;
  };
  double total = value("server.faults.bad_message") +
                 value("server.faults.handshake_timeouts") +
                 value("server.faults.invalid_hello") +
                 value("server.overload.rejected_full") +
                 value("server.overload.rate_limited");
  if (accepted != nullptr) total += *accepted;
  return total;
}

std::uint64_t now_ms() {
  return runtime::monotonic_now_us() / 1000;
}

int fuzz_run(const Options& opt) {
  const std::string socket_path =
      "/tmp/bbsched-fuzz-" + std::to_string(::getpid()) + ".sock";

  obs::MetricsRegistry metrics;
  runtime::ServerConfig cfg;
  cfg.socket_path = socket_path;
  cfg.nprocs = 2;
  cfg.metrics = &metrics;
  cfg.handshake_timeout_ms = 25;  // bounds the per-stall cost of a mutant
  cfg.max_clients = 8;            // small cap: admission paths get fuzzed too
  runtime::ManagerServer server(cfg);
  if (!server.start()) {
    std::fprintf(stderr, "proto_fuzz: cannot start manager on %s\n",
                 socket_path.c_str());
    return 2;
  }

  const int fds_before = count_open_fds();
  const auto corpus = seed_corpus();
  stats::Rng rng(opt.seed);
  double accepted = 0.0;
  int sent = 0;
  int undialable = 0;
  const std::uint64_t deadline =
      opt.seconds > 0
          ? now_ms() + static_cast<std::uint64_t>(opt.seconds) * 1000ULL
          : 0;

  for (int i = 0; deadline != 0 ? now_ms() < deadline : i < opt.frames; ++i) {
    const auto bytes = mutate(corpus[rng() % corpus.size()], rng);
    const int sock = dial(socket_path);
    if (sock < 0) {
      // Accept backoff can briefly park the listen socket; connect refusal
      // here is not a protocol bug. Tally and move on.
      ++undialable;
      continue;
    }
    ++sent;
    runtime::send_all(sock, bytes.data(), bytes.size());
    // Always wait for the server's verdict (ack, nack, or close) so every
    // connection is classified before the next one starts: this is what
    // makes the accounting invariant exact.
    MsgHeader hdr{};
    runtime::HelloAck ack{};
    int arena_fd = -1;
    const runtime::RecvStatus st =
        recv_msg(sock, hdr, &ack, sizeof(ack), &arena_fd);
    if (arena_fd >= 0) ::close(arena_fd);  // never leak the arena handle
    if (st == runtime::RecvStatus::kOk &&
        hdr.type == static_cast<std::uint16_t>(MsgType::kHelloAck)) {
      accepted += 1.0;
    }
    ::close(sock);
    if (opt.verbose && sent % 1000 == 0) {
      std::fprintf(stderr, "proto_fuzz: %d frames, %.0f accepted\n", sent,
                   accepted);
    }
  }

  // Quiesce: the server drops fuzz connections at its own pace.
  const std::uint64_t quiesce_deadline = now_ms() + 10000;
  while (server.connected_apps() > 0 && now_ms() < quiesce_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  int failures = 0;

  // Invariant 3 — mis-accounting: every connection got a typed outcome.
  const std::uint64_t account_deadline = now_ms() + 10000;
  while (outcome_total(metrics, &accepted) < static_cast<double>(sent) &&
         now_ms() < account_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const double outcomes = outcome_total(metrics, &accepted);
  if (outcomes < static_cast<double>(sent)) {
    std::fprintf(stderr,
                 "proto_fuzz: MIS-ACCOUNTING: %d connections but only %.0f "
                 "typed outcomes\n",
                 sent, outcomes);
    ++failures;
  }

  // Invariant 1 — liveness: an honest handshake still succeeds.
  {
    const int sock = dial(socket_path);
    bool alive = false;
    if (sock >= 0) {
      HelloMsg hello{};
      hello.pid = ::getpid();
      hello.leader_tid = static_cast<std::int32_t>(::syscall(SYS_gettid));
      hello.nthreads = 1;
      std::strncpy(hello.name, "honest", sizeof(hello.name) - 1);
      if (send_msg(sock, MsgType::kHello, 0, &hello, sizeof(hello))) {
        MsgHeader hdr{};
        runtime::HelloAck ack{};
        int arena_fd = -1;
        if (recv_msg(sock, hdr, &ack, sizeof(ack), &arena_fd) ==
                runtime::RecvStatus::kOk &&
            hdr.type == static_cast<std::uint16_t>(MsgType::kHelloAck)) {
          alive = true;
        }
        if (arena_fd >= 0) ::close(arena_fd);
      }
      ::close(sock);
    }
    if (!alive) {
      std::fprintf(stderr,
                   "proto_fuzz: LIVENESS: honest handshake failed after the "
                   "storm\n");
      ++failures;
    }
  }

  // Let the server reap the honest probe before the fd census.
  const std::uint64_t reap_deadline = now_ms() + 10000;
  while (server.connected_apps() > 0 && now_ms() < reap_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Invariant 2 — fd stability across the whole storm. Retry briefly: a
  // connection the server is mid-drop at census time is cleanup in flight,
  // not a leak; a real leak never converges back to the baseline.
  int fds_after = count_open_fds();
  for (int retry = 0; retry < 100 && fds_after > fds_before; ++retry) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fds_after = count_open_fds();
  }
  if (fds_before >= 0 && fds_after >= 0 && fds_after > fds_before) {
    std::fprintf(stderr, "proto_fuzz: FD LEAK: %d open fds before, %d after\n",
                 fds_before, fds_after);
    ++failures;
  }

  server.stop();
  std::fprintf(stderr,
               "proto_fuzz: seed=%llu frames=%d accepted=%.0f outcomes=%.0f "
               "undialable=%d fds=%d->%d : %s\n",
               static_cast<unsigned long long>(opt.seed), sent, accepted,
               outcomes, undialable, fds_before, fds_after,
               failures == 0 ? "OK" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto num = [&](const char* prefix) -> long long {
      return std::stoll(arg.substr(std::strlen(prefix)));
    };
    if (arg.rfind("--seed=", 0) == 0) {
      opt.seed = static_cast<std::uint64_t>(num("--seed="));
    } else if (arg.rfind("--frames=", 0) == 0) {
      opt.frames = static_cast<int>(num("--frames="));
    } else if (arg.rfind("--seconds=", 0) == 0) {
      opt.seconds = static_cast<int>(num("--seconds="));
    } else if (arg == "--verbose") {
      opt.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: proto_fuzz [--frames=N] [--seconds=N] [--seed=N] "
                   "[--verbose]\n");
      return 2;
    }
  }
  if (opt.seconds > 0) {
    // Soak mode: rotate the seed every bounded sub-run so crashes found in
    // soak reproduce with a plain --frames invocation of the same seed.
    std::uint64_t seed = opt.seed;
    const std::uint64_t deadline =
        bbsched::runtime::monotonic_now_us() +
        static_cast<std::uint64_t>(opt.seconds) * 1000000ULL;
    while (bbsched::runtime::monotonic_now_us() < deadline) {
      Options sub = opt;
      sub.seconds = 0;
      sub.seed = seed++;
      const int rc = fuzz_run(sub);
      if (rc != 0) return rc;
    }
    return 0;
  }
  return fuzz_run(opt);
}
