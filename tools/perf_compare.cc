// perf_compare: diff two perf_ticks JSON reports section by section.
//
// Usage: perf_compare BASELINE.json CURRENT.json [--min-speedup=X]
//
// Reads the flat JSON emitted by bench/perf_ticks (one object of named
// sections, each a flat object of numeric/boolean fields) and prints, per
// section, every field present in both files with its old value, new value
// and relative delta. Throughput-style fields (ticks_per_sec, speedup) are
// marked so a reader can see at a glance whether a delta is an improvement.
//
// With --min-speedup=X the tool exits non-zero unless
//   current.tick_bench.ticks_per_sec >= X * baseline.tick_bench.ticks_per_sec
// which makes it usable as a CI regression gate:
//   perf_compare BENCH_perf_ticks_base.json new.json --min-speedup=0.9
//
// The parser is deliberately tiny: it understands exactly the subset of JSON
// the bench emits (flat sections, numeric and boolean scalars) and depends on
// nothing outside the standard library.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using Section = std::map<std::string, double>;
using Report = std::map<std::string, Section>;

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// Extracts `"name": value` pairs. A value that opens a brace starts a new
/// section scoped until the matching close; scalar values (numbers, true,
/// false) land in the current section. Top-level scalars (hardware_threads)
/// go into a section named "".
Report parse(const std::string& text) {
  Report rep;
  std::string section;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    if (text[i] != '"') {
      if (text[i] == '}') section.clear();
      ++i;
      continue;
    }
    const std::size_t key_start = ++i;
    while (i < n && text[i] != '"') ++i;
    if (i >= n) break;
    const std::string key = text.substr(key_start, i - key_start);
    ++i;  // closing quote
    while (i < n && (std::isspace(static_cast<unsigned char>(text[i])) ||
                     text[i] == ':')) {
      ++i;
    }
    if (i >= n) break;
    if (text[i] == '{') {
      section = key;
      ++i;
      continue;
    }
    double value = 0.0;
    if (std::strncmp(text.c_str() + i, "true", 4) == 0) {
      value = 1.0;
    } else if (std::strncmp(text.c_str() + i, "false", 5) == 0) {
      value = 0.0;
    } else {
      char* end = nullptr;
      value = std::strtod(text.c_str() + i, &end);
      if (end == text.c_str() + i) continue;  // not a scalar; skip
    }
    rep[section][key] = value;
  }
  return rep;
}

bool higher_is_better(const std::string& key) {
  return key == "ticks_per_sec" || key == "speedup" ||
         key == "results_identical" || key == "batched_frac";
}

void print_section(const std::string& name, const Section& base,
                   const Section& cur) {
  std::printf("%s\n", name.empty() ? "(top level)" : name.c_str());
  for (const auto& [key, old_v] : base) {
    const auto it = cur.find(key);
    if (it == cur.end()) continue;
    const double new_v = it->second;
    std::string delta = "      -";
    if (old_v != 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+7.1f%%",
                    (new_v - old_v) / old_v * 100.0);
      delta = buf;
    }
    std::printf("  %-18s %14.4f -> %14.4f  %s%s\n", key.c_str(), old_v, new_v,
                delta.c_str(), higher_is_better(key) ? "  (higher=better)" : "");
  }
  for (const auto& [key, new_v] : cur) {
    if (base.find(key) == base.end()) {
      std::printf("  %-18s %14s -> %14.4f  (new field)\n", key.c_str(), "-",
                  new_v);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--min-speedup=", 0) == 0) {
      min_speedup = std::strtod(arg.c_str() + 14, nullptr);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: perf_compare BASELINE.json CURRENT.json "
                 "[--min-speedup=X]\n");
    return 2;
  }

  std::string base_text;
  std::string cur_text;
  if (!read_file(files[0], base_text)) {
    std::fprintf(stderr, "cannot read %s\n", files[0].c_str());
    return 2;
  }
  if (!read_file(files[1], cur_text)) {
    std::fprintf(stderr, "cannot read %s\n", files[1].c_str());
    return 2;
  }
  const Report base = parse(base_text);
  const Report cur = parse(cur_text);
  if (base.empty() || cur.empty()) {
    std::fprintf(stderr, "no sections parsed (is this perf_ticks JSON?)\n");
    return 2;
  }

  std::printf("perf_compare: %s -> %s\n\n", files[0].c_str(),
              files[1].c_str());
  for (const auto& [name, section] : base) {
    const auto it = cur.find(name);
    if (it == cur.end()) continue;
    print_section(name, section, it->second);
  }

  if (min_speedup > 0.0) {
    const auto b = base.find("tick_bench");
    const auto c = cur.find("tick_bench");
    if (b == base.end() || c == cur.end() ||
        !b->second.count("ticks_per_sec") ||
        !c->second.count("ticks_per_sec") ||
        b->second.at("ticks_per_sec") <= 0.0) {
      std::fprintf(stderr,
                   "FAIL: --min-speedup needs tick_bench.ticks_per_sec in "
                   "both files\n");
      return 1;
    }
    const double ratio =
        c->second.at("ticks_per_sec") / b->second.at("ticks_per_sec");
    std::printf("\ntick_bench speedup: %.3fx (gate: >= %.3fx)\n", ratio,
                min_speedup);
    if (ratio < min_speedup) {
      std::fprintf(stderr, "FAIL: speedup %.3fx below gate %.3fx\n", ratio,
                   min_speedup);
      return 1;
    }
  }
  return 0;
}
