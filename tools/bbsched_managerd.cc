// bbsched-managerd — the user-level CPU manager as a standalone daemon,
// exactly the deployment the paper describes: "The user-level CPU manager
// runs as a server process on the target system."
//
// Applications link the client runtime (src/runtime/client.h) or use the
// bbsched_kernel tool and connect through the UNIX socket; the daemon
// samples their shared arenas twice per quantum and enforces gang elections
// with SIGUSR1/SIGUSR2.
//
// Usage:
//   bbsched_managerd [--socket=/tmp/bbsched.sock] [--quantum-ms=200]
//                    [--policy=latest|window|predictive] [--window=5]
//                    [--procs=N] [--bus-tps=29.5] [--run-seconds=S]
//                    [--status-interval=2]
//
// Without --run-seconds the daemon runs until SIGINT/SIGTERM.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "runtime/manager_server.h"

namespace {

std::atomic<bool> g_stop{false};

// bbsched:signal SIGINT/SIGTERM handler
void handle_stop(int) { g_stop.store(true); }

double arg_double(const std::string& arg, const char* prefix, double fallback) {
  const std::size_t n = std::strlen(prefix);
  if (arg.rfind(prefix, 0) == 0) return std::stod(arg.substr(n));
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bbsched;

  runtime::ServerConfig cfg;
  cfg.socket_path = "/tmp/bbsched.sock";
  double run_seconds = 0.0;
  double status_interval = 2.0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      cfg.socket_path = arg.substr(9);
    } else if (arg.rfind("--quantum-ms=", 0) == 0) {
      cfg.manager.quantum_us =
          static_cast<sim::SimTime>(std::stoull(arg.substr(13)) * 1000);
    } else if (arg.rfind("--policy=", 0) == 0) {
      const std::string p = arg.substr(9);
      if (p == "latest") {
        cfg.manager.policy = core::PolicyKind::kLatestQuantum;
      } else if (p == "window") {
        cfg.manager.policy = core::PolicyKind::kQuantaWindow;
      } else if (p == "predictive") {
        cfg.manager.policy = core::PolicyKind::kQuantaWindow;
        cfg.manager.use_predictive = true;
      } else {
        std::fprintf(stderr, "unknown policy '%s'\n", p.c_str());
        return 2;
      }
    } else if (arg.rfind("--window=", 0) == 0) {
      cfg.manager.window_len = std::stoul(arg.substr(9));
    } else if (arg.rfind("--procs=", 0) == 0) {
      cfg.nprocs = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--bus-tps=", 0) == 0) {
      cfg.manager.total_bus_bw_tps = arg_double(arg, "--bus-tps=", 29.5);
      cfg.manager.initial_estimate_tps =
          cfg.manager.total_bus_bw_tps / 4.0;
    } else if (arg.rfind("--run-seconds=", 0) == 0) {
      run_seconds = arg_double(arg, "--run-seconds=", 0.0);
    } else if (arg.rfind("--status-interval=", 0) == 0) {
      status_interval = arg_double(arg, "--status-interval=", 2.0);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "bbsched-managerd: bus-bandwidth-aware user-level CPU manager\n"
          "  --socket=PATH       UNIX socket to listen on\n"
          "  --quantum-ms=N      scheduling quantum (default 200)\n"
          "  --policy=latest|window|predictive\n"
          "  --window=N          quanta-window length (default 5)\n"
          "  --procs=N           processors to allocate (default: online)\n"
          "  --bus-tps=X         bus capacity in transactions/us\n"
          "  --run-seconds=S     exit after S seconds (default: on signal)\n"
          "  --status-interval=S status print period (0 = quiet)\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return 2;
    }
  }

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  runtime::ManagerServer server(cfg);
  if (!server.start()) {
    std::fprintf(stderr, "managerd: cannot bind %s\n",
                 cfg.socket_path.c_str());
    return 1;
  }
  std::printf("managerd: listening on %s (%s, %llu ms quantum, %d procs)\n",
              cfg.socket_path.c_str(),
              cfg.manager.use_predictive
                  ? "predictive"
                  : core::to_string(cfg.manager.policy),
              static_cast<unsigned long long>(cfg.manager.quantum_us / 1000),
              server.config().nprocs);
  std::fflush(stdout);

  const auto start = std::chrono::steady_clock::now();
  auto last_status = start;
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const auto now = std::chrono::steady_clock::now();
    if (run_seconds > 0.0 &&
        std::chrono::duration<double>(now - start).count() >= run_seconds) {
      break;
    }
    if (status_interval > 0.0 &&
        std::chrono::duration<double>(now - last_status).count() >=
            status_interval) {
      last_status = now;
      std::printf("managerd: %zu app(s), %llu elections; running:",
                  server.connected_apps(),
                  static_cast<unsigned long long>(server.elections()));
      for (const auto& name : server.running_app_names()) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }

  server.stop();
  std::printf("managerd: stopped after %llu elections\n",
              static_cast<unsigned long long>(server.elections()));
  return 0;
}
