// bbsched_lint — enforces the repo's machine-checkable contracts over its
// own sources (see docs/STATIC_ANALYSIS.md for the rule catalog).
//
//   bbsched_lint [--root=DIR] [--format=text|json|github] [--stats]
//                [--baseline=FILE] [--update-baseline] [--compdb=FILE]
//                [--show-suppressed] [--list-rules] [paths...]
//
// With no paths, the translation units come from compile_commands.json
// (looked for at <root>/compile_commands.json, then <root>/build/, or at
// --compdb=FILE) plus every header under src/ tools/ bench/ examples/
// tests/ and docs/OBSERVABILITY.md; when no compilation database exists
// the .cc files are globbed from those directories too, with a warning,
// since an unconfigured tree should still lint. Paths are interpreted
// relative to the root.
//
// The ratchet: --baseline=FILE grandfathers the findings recorded in FILE
// (missing file = empty baseline, with a warning); only findings not in
// the baseline fail the run. --update-baseline rewrites FILE from the
// current findings and exits 0.
//
// Exit status: 0 clean (or everything baselined/suppressed), 1 failing
// findings, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"

namespace fs = std::filesystem;

namespace {

constexpr const char* kDefaultDirs[] = {"src", "tools", "bench", "examples",
                                        "tests"};
constexpr const char* kDocPath = "docs/OBSERVABILITY.md";

[[nodiscard]] bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

[[nodiscard]] bool is_header_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp";
}

/// Repo-relative path with '/' separators (rule scoping keys off these).
[[nodiscard]] std::string rel_path(const fs::path& p, const fs::path& root) {
  std::string s = p.lexically_relative(root).generic_string();
  return s.empty() ? p.generic_string() : s;
}

[[nodiscard]] int collect(bbsched::analysis::Analyzer& analyzer,
                          const fs::path& target, const fs::path& root,
                          bool headers_only) {
  std::error_code ec;
  if (fs::is_directory(target, ec)) {
    std::vector<fs::path> files;
    for (auto it = fs::recursive_directory_iterator(target, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file(ec) &&
          (headers_only ? is_header_file(it->path())
                        : is_source_file(it->path()))) {
        files.push_back(it->path());
      }
    }
    if (ec) {
      std::cerr << "bbsched_lint: cannot walk " << target << ": "
                << ec.message() << "\n";
      return 2;
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) {
      if (!analyzer.add_file_from_disk(f.string(), rel_path(f, root))) {
        std::cerr << "bbsched_lint: cannot read " << f << "\n";
        return 2;
      }
    }
    return 0;
  }
  if (!fs::is_regular_file(target, ec)) {
    std::cerr << "bbsched_lint: no such file or directory: " << target
              << "\n";
    return 2;
  }
  if (!analyzer.add_file_from_disk(target.string(), rel_path(target, root))) {
    std::cerr << "bbsched_lint: cannot read " << target << "\n";
    return 2;
  }
  return 0;
}

/// Pulls the "file" values out of a compile_commands.json. Deliberately a
/// targeted scan, not a JSON parser: CMake's output is regular, and the
/// only field we need is `"file": "..."` (absolute path, no escapes in
/// practice; entries with escapes are skipped).
[[nodiscard]] std::vector<fs::path> compdb_files(const fs::path& compdb) {
  std::vector<fs::path> out;
  std::ifstream in(compdb, std::ios::binary);
  if (!in) return out;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = std::move(buf).str();
  const std::string needle = "\"file\"";
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    std::size_t q = text.find('"', pos + needle.size());
    if (q == std::string::npos) break;
    // The quote we found must open the value, i.e. follow a ':'.
    const std::size_t colon = text.find_first_not_of(" \t\r\n",
                                                     pos + needle.size());
    if (colon == std::string::npos || text[colon] != ':') continue;
    q = text.find('"', colon + 1);
    if (q == std::string::npos) break;
    const std::size_t end = text.find('"', q + 1);
    if (end == std::string::npos) break;
    const std::string value = text.substr(q + 1, end - q - 1);
    if (value.find('\\') == std::string::npos && !value.empty()) {
      out.emplace_back(value);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string format = "text";
  bool show_suppressed = false;
  bool show_stats = false;
  bool update_baseline = false;
  std::string baseline_path;
  std::string compdb_path;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      format = "json";
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "github") {
        std::cerr << "bbsched_lint: unknown format '" << format
                  << "' (want text, json, or github)\n";
        return 2;
      }
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--update-baseline") {
      update_baseline = true;
    } else if (arg.rfind("--compdb=", 0) == 0) {
      compdb_path = arg.substr(9);
    } else if (arg == "--list-rules") {
      for (const std::string& r : bbsched::analysis::known_rules()) {
        std::cout << r << "\n";
      }
      std::cout << "annotation (not suppressible)\n";
      return 0;
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bbsched_lint [--root=DIR] "
                   "[--format=text|json|github] [--stats]\n"
                   "                    [--baseline=FILE] [--update-baseline] "
                   "[--compdb=FILE]\n"
                   "                    [--show-suppressed] [--list-rules] "
                   "[paths...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "bbsched_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (update_baseline && baseline_path.empty()) {
    std::cerr << "bbsched_lint: --update-baseline requires --baseline=FILE\n";
    return 2;
  }

  std::error_code ec;
  root = fs::absolute(root, ec);
  if (ec || !fs::is_directory(root)) {
    std::cerr << "bbsched_lint: --root is not a directory: " << root << "\n";
    return 2;
  }

  bbsched::analysis::Analyzer analyzer;
  if (paths.empty()) {
    // Translation units from the compilation database when one exists;
    // headers (which carry inline bodies and annotations but no compile
    // commands) always come from the directory walk.
    fs::path compdb = compdb_path.empty() ? fs::path() : fs::path(compdb_path);
    if (compdb.empty()) {
      for (const fs::path& cand :
           {root / "compile_commands.json",
            root / "build" / "compile_commands.json"}) {
        if (fs::is_regular_file(cand, ec)) {
          compdb = cand;
          break;
        }
      }
    } else if (compdb.is_relative()) {
      compdb = root / compdb;
    }
    std::vector<fs::path> units;
    if (!compdb.empty() && fs::is_regular_file(compdb, ec)) {
      units = compdb_files(compdb);
    } else if (!compdb_path.empty()) {
      std::cerr << "bbsched_lint: cannot read compdb " << compdb << "\n";
      return 2;
    }
    if (units.empty()) {
      std::cerr << "bbsched_lint: warning: no compile_commands.json found; "
                   "globbing .cc files (configure with CMake for the "
                   "authoritative unit list)\n";
      for (const char* dir : kDefaultDirs) {
        const fs::path d = root / dir;
        if (!fs::is_directory(d, ec)) continue;
        if (const int rc = collect(analyzer, d, root, false); rc != 0) {
          return rc;
        }
      }
    } else {
      for (const fs::path& u : units) {
        // Only lint units inside the root (skip e.g. generated files).
        const std::string rel = rel_path(u, root);
        if (rel.empty() || rel[0] == '.' || rel[0] == '/') continue;
        if (!fs::is_regular_file(u, ec)) continue;
        if (!analyzer.add_file_from_disk(u.string(), rel)) {
          std::cerr << "bbsched_lint: cannot read " << u << "\n";
          return 2;
        }
      }
      for (const char* dir : kDefaultDirs) {
        const fs::path d = root / dir;
        if (!fs::is_directory(d, ec)) continue;
        if (const int rc = collect(analyzer, d, root, true); rc != 0) {
          return rc;
        }
      }
    }
    const fs::path doc = root / kDocPath;
    if (fs::is_regular_file(doc, ec)) {
      if (!analyzer.add_file_from_disk(doc.string(), kDocPath)) {
        std::cerr << "bbsched_lint: cannot read " << doc << "\n";
        return 2;
      }
    }
  } else {
    for (const std::string& p : paths) {
      fs::path target = p;
      if (target.is_relative()) target = root / target;
      if (const int rc = collect(analyzer, target, root, false); rc != 0) {
        return rc;
      }
    }
  }

  bbsched::analysis::AnalysisResult result = analyzer.run();

  if (update_baseline) {
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "bbsched_lint: cannot write baseline " << baseline_path
                << "\n";
      return 2;
    }
    bbsched::analysis::write_baseline(out, result);
    std::size_t entries = 0;
    for (const auto& f : result.findings) {
      if (!f.suppressed) ++entries;
    }
    std::cerr << "bbsched_lint: baseline updated (" << entries
              << " grandfathered finding(s))\n";
    return 0;
  }
  if (!baseline_path.empty()) {
    bbsched::analysis::Baseline baseline;
    std::string error;
    if (fs::is_regular_file(baseline_path, ec)) {
      if (!bbsched::analysis::load_baseline(baseline_path, baseline, error)) {
        std::cerr << "bbsched_lint: " << error << "\n";
        return 2;
      }
    } else {
      std::cerr << "bbsched_lint: warning: baseline " << baseline_path
                << " not found; treating as empty (every finding fails)\n";
    }
    bbsched::analysis::apply_baseline(baseline, result);
  }

  if (format == "json") {
    bbsched::analysis::write_json_report(std::cout, result);
  } else if (format == "github") {
    bbsched::analysis::write_github_report(std::cout, result);
  } else {
    bbsched::analysis::write_text_report(std::cout, result, show_suppressed);
  }
  if (show_stats && format != "json") {
    const auto& s = result.stats;
    const double pct =
        s.call_sites == 0
            ? 100.0
            : 100.0 * static_cast<double>(s.resolved_edges) /
                  static_cast<double>(s.call_sites);
    std::cerr << "bbsched_lint: " << result.files_scanned << " file(s), "
              << s.functions << " function(s), " << s.call_sites
              << " call site(s), " << s.resolved_edges << " resolved ("
              << static_cast<int>(pct + 0.5) << "%)\n";
  }
  return result.failing() == 0 ? 0 : 1;
}
