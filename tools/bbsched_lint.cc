// bbsched_lint — enforces the repo's machine-checkable contracts over its
// own sources (see docs/STATIC_ANALYSIS.md for the rule catalog).
//
//   bbsched_lint [--root=DIR] [--json] [--show-suppressed] [--list-rules]
//                [paths...]
//
// With no paths, scans src/ tools/ bench/ examples/ tests/ under the root
// plus docs/OBSERVABILITY.md (the catalog rule's doc side). Paths are
// interpreted relative to the root. Exit status: 0 clean, 1 unsuppressed
// findings, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"

namespace fs = std::filesystem;

namespace {

constexpr const char* kDefaultDirs[] = {"src", "tools", "bench", "examples",
                                        "tests"};
constexpr const char* kDocPath = "docs/OBSERVABILITY.md";

[[nodiscard]] bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

/// Repo-relative path with '/' separators (rule scoping keys off these).
[[nodiscard]] std::string rel_path(const fs::path& p, const fs::path& root) {
  std::string s = p.lexically_relative(root).generic_string();
  return s.empty() ? p.generic_string() : s;
}

[[nodiscard]] int collect(bbsched::analysis::Analyzer& analyzer,
                          const fs::path& target, const fs::path& root) {
  std::error_code ec;
  if (fs::is_directory(target, ec)) {
    std::vector<fs::path> files;
    for (auto it = fs::recursive_directory_iterator(target, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_regular_file(ec) && is_source_file(it->path())) {
        files.push_back(it->path());
      }
    }
    if (ec) {
      std::cerr << "bbsched_lint: cannot walk " << target << ": "
                << ec.message() << "\n";
      return 2;
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& f : files) {
      if (!analyzer.add_file_from_disk(f.string(), rel_path(f, root))) {
        std::cerr << "bbsched_lint: cannot read " << f << "\n";
        return 2;
      }
    }
    return 0;
  }
  if (!fs::is_regular_file(target, ec)) {
    std::cerr << "bbsched_lint: no such file or directory: " << target
              << "\n";
    return 2;
  }
  if (!analyzer.add_file_from_disk(target.string(), rel_path(target, root))) {
    std::cerr << "bbsched_lint: cannot read " << target << "\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool json = false;
  bool show_suppressed = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--show-suppressed") {
      show_suppressed = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : bbsched::analysis::known_rules()) {
        std::cout << r << "\n";
      }
      std::cout << "annotation (not suppressible)\n";
      return 0;
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bbsched_lint [--root=DIR] [--json] "
                   "[--show-suppressed] [--list-rules] [paths...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "bbsched_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  std::error_code ec;
  root = fs::absolute(root, ec);
  if (ec || !fs::is_directory(root)) {
    std::cerr << "bbsched_lint: --root is not a directory: " << root << "\n";
    return 2;
  }

  bbsched::analysis::Analyzer analyzer;
  if (paths.empty()) {
    for (const char* dir : kDefaultDirs) {
      const fs::path d = root / dir;
      if (!fs::is_directory(d, ec)) continue;
      if (const int rc = collect(analyzer, d, root); rc != 0) return rc;
    }
    const fs::path doc = root / kDocPath;
    if (fs::is_regular_file(doc, ec)) {
      if (!analyzer.add_file_from_disk(doc.string(), kDocPath)) {
        std::cerr << "bbsched_lint: cannot read " << doc << "\n";
        return 2;
      }
    }
  } else {
    for (const std::string& p : paths) {
      fs::path target = p;
      if (target.is_relative()) target = root / target;
      if (const int rc = collect(analyzer, target, root); rc != 0) return rc;
    }
  }

  const bbsched::analysis::AnalysisResult result = analyzer.run();
  if (json) {
    bbsched::analysis::write_json_report(std::cout, result);
  } else {
    bbsched::analysis::write_text_report(std::cout, result, show_suppressed);
  }
  return result.unsuppressed() == 0 ? 0 : 1;
}
