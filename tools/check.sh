#!/usr/bin/env bash
# Full local gate: build + lint + baseline freshness + test across the
# sanitizer matrix.
#
#   tools/check.sh            # plain, thread, address, undefined
#   tools/check.sh plain tsan # subset: plain + thread
#
# Each configuration gets its own build directory (build-check-<name>), so
# repeat runs are incremental. The plain configuration runs the whole suite;
# sanitizer configurations run the concurrency/robustness labels that the
# instrumentation is for (chaos, soak, syschaos) plus the lint gate —
# except that the thread configuration skips the soak: the recovery soak
# forks a supervised manager from a multi-threaded process, which TSan
# refuses to run ("starting new threads after multi-threaded fork is not
# supported"). The syschaos label stays fork-free by construction
# (tests/CMakeLists.txt), so TSan runs it in full.
#
# Legs continue past failures so one run reports every broken
# configuration; the summary table at the end shows per-leg results and
# the exit code is nonzero if ANY leg failed.
set -uo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

configs=("$@")
if [ ${#configs[@]} -eq 0 ]; then
  configs=(plain thread address undefined)
fi

legs=()      # "<config>/<step>" per leg, in run order
results=()   # "ok" | "FAIL" | "skip", same index

run_leg() {  # run_leg <config> <step> <cmd...>
  local cfg="$1" step="$2"
  shift 2
  echo "==> [$cfg] $step"
  if "$@"; then
    legs+=("$cfg/$step"); results+=("ok")
    return 0
  fi
  legs+=("$cfg/$step"); results+=("FAIL")
  return 1
}

skip_leg() {  # skip_leg <config> <step> <why>
  echo "==> [$1] $2 skipped ($3)"
  legs+=("$1/$2"); results+=("skip")
}

# The committed ratchet baseline must match what --update-baseline would
# write today: a stale file hides drift in both directions (fixed findings
# that should leave the baseline, or hand-edits that never matched a real
# finding). Regenerate to a temp file and diff.
baseline_fresh() {  # baseline_fresh <builddir>
  local dir="$1" tmp
  tmp=$(mktemp) || return 1
  if ! "$dir/tools/bbsched_lint" --root="$PWD" \
      --compdb="$dir/compile_commands.json" \
      --baseline="$tmp" --update-baseline >/dev/null; then
    rm -f "$tmp"
    return 1
  fi
  if ! diff -u lint_baseline.json "$tmp"; then
    echo "lint_baseline.json is stale: regenerate with" >&2
    echo "  $dir/tools/bbsched_lint --root=. --compdb=$dir/compile_commands.json --baseline=lint_baseline.json --update-baseline" >&2
    rm -f "$tmp"
    return 1
  fi
  rm -f "$tmp"
}

ctest_leg() {  # ctest_leg <builddir> [label-regex]
  local dir="$1" labels="${2-}"
  if [ -n "$labels" ]; then
    (cd "$dir" && ctest --output-on-failure -j "$jobs" -L "$labels")
  else
    (cd "$dir" && ctest --output-on-failure -j "$jobs")
  fi
}

checked_fresh=0
for cfg in "${configs[@]}"; do
  case "$cfg" in
    plain)               sanitize="" ;;
    thread|tsan)         cfg=thread;    sanitize=thread ;;
    address|asan)        cfg=address;   sanitize=address ;;
    undefined|ubsan)     cfg=undefined; sanitize=undefined ;;
    *) echo "check.sh: unknown configuration '$cfg'" >&2; exit 2 ;;
  esac
  dir="build-check-$cfg"

  run_leg "$cfg" configure \
    cmake -S . -B "$dir" -DBBSCHED_SANITIZE="$sanitize" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo || { skip_leg "$cfg" build "configure failed"; continue; }
  run_leg "$cfg" build cmake --build "$dir" -j "$jobs" \
    || { skip_leg "$cfg" lint "build failed"; continue; }

  run_leg "$cfg" lint \
    "$dir/tools/bbsched_lint" --root="$PWD" \
      --compdb="$dir/compile_commands.json" --baseline=lint_baseline.json || true
  # Freshness is configuration-independent; check it once.
  if [ "$checked_fresh" -eq 0 ]; then
    checked_fresh=1
    run_leg "$cfg" baseline-fresh baseline_fresh "$dir" || true
  fi
  run_leg "$cfg" opt_solve "$dir/tools/opt_solve" --self-check || true

  case "$cfg" in
    plain)  run_leg "$cfg" ctest ctest_leg "$dir" || true ;;
    thread) run_leg "$cfg" ctest ctest_leg "$dir" 'chaos|fuzz|lint|syschaos' || true ;;
    *)      run_leg "$cfg" ctest ctest_leg "$dir" 'chaos|soak|fuzz|lint|syschaos' || true ;;
  esac
done

echo
echo "==> summary"
failed=0
for i in "${!legs[@]}"; do
  printf '  %-28s %s\n' "${legs[$i]}" "${results[$i]}"
  [ "${results[$i]}" = "FAIL" ] && failed=1
done
if [ "$failed" -ne 0 ]; then
  echo "==> FAILED legs above"
  exit 1
fi
echo "==> all legs passed: ${configs[*]}"
