#!/usr/bin/env bash
# Full local gate: build + lint + test across the sanitizer matrix.
#
#   tools/check.sh            # plain, thread, address, undefined
#   tools/check.sh plain tsan # subset: plain + thread
#
# Each configuration gets its own build directory (build-check-<name>), so
# repeat runs are incremental. The plain configuration runs the whole suite;
# sanitizer configurations run the concurrency/robustness labels that the
# instrumentation is for (chaos, soak, syschaos) plus the lint gate —
# except that the thread configuration skips the soak: the recovery soak
# forks a supervised manager from a multi-threaded process, which TSan
# refuses to run ("starting new threads after multi-threaded fork is not
# supported"). The syschaos label stays fork-free by construction
# (tests/CMakeLists.txt), so TSan runs it in full.
# Stops on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)

configs=("$@")
if [ ${#configs[@]} -eq 0 ]; then
  configs=(plain thread address undefined)
fi

for cfg in "${configs[@]}"; do
  case "$cfg" in
    plain)               sanitize="" ;;
    thread|tsan)         cfg=thread;    sanitize=thread ;;
    address|asan)        cfg=address;   sanitize=address ;;
    undefined|ubsan)     cfg=undefined; sanitize=undefined ;;
    *) echo "check.sh: unknown configuration '$cfg'" >&2; exit 2 ;;
  esac
  dir="build-check-$cfg"
  echo "==> [$cfg] configure"
  cmake -S . -B "$dir" -DBBSCHED_SANITIZE="$sanitize" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
  echo "==> [$cfg] build"
  cmake --build "$dir" -j "$jobs"
  echo "==> [$cfg] lint"
  "$dir/tools/bbsched_lint" --root="$PWD"
  echo "==> [$cfg] opt_solve fixtures"
  "$dir/tools/opt_solve" --self-check
  echo "==> [$cfg] ctest"
  case "$cfg" in
    plain)  (cd "$dir" && ctest --output-on-failure -j "$jobs") ;;
    thread) (cd "$dir" && ctest --output-on-failure -j "$jobs" -L 'chaos|fuzz|lint|syschaos') ;;
    *)      (cd "$dir" && ctest --output-on-failure -j "$jobs" -L 'chaos|soak|fuzz|lint|syschaos') ;;
  esac
done

echo "==> all configurations passed: ${configs[*]}"
