// Schedule visualization: run the same workload under every scheduler and
// render ASCII Gantt charts of who occupied which processor when. The
// contrast makes the policies' behaviour obvious at a glance: Linux
// interleaves everything; equipartition draws static horizontal stripes;
// the bandwidth-aware managers alternate clean vertical gangs.
//
// Usage: schedule_gantt [app] [seconds]     (default: SP, 4 s)
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "experiments/runner.h"
#include "trace/gantt.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace bbsched;
  const std::string app_name = argc > 1 ? argv[1] : "SP";
  const int seconds = argc > 2 ? std::atoi(argv[2]) : 4;

  experiments::ExperimentConfig cfg;
  const auto w = workload::fig2_mixed(
      workload::paper_application(app_name), cfg.machine.bus);

  std::vector<std::string> names;
  for (const auto& j : w.jobs) names.push_back(j.name);

  for (const auto kind : {experiments::SchedulerKind::kLinux,
                          experiments::SchedulerKind::kEquipartition,
                          experiments::SchedulerKind::kQuantaWindow}) {
    sim::EngineConfig ecfg = cfg.engine;
    ecfg.trace = true;
    sim::Engine eng(cfg.machine, ecfg,
                    experiments::make_scheduler(kind, cfg));
    for (const auto& job : w.jobs) eng.add_job(job);
    eng.run_until(sim::sec(static_cast<std::uint64_t>(seconds)));

    std::printf("\n=== %s ===\n", experiments::to_string(kind));
    trace::GanttOptions opt;
    opt.cell_us = 25'000;  // 25 ms cells: quantum structure visible
    opt.max_cells = 160;
    render_gantt(std::cout, eng.trace(), cfg.machine.num_cpus, names, opt);
  }
  std::printf("\nworkload: %s — jobs 'a','b' are the application instances; "
              "'c','d' BBMA; 'e','f' nBBMA\n", w.name.c_str());
  return 0;
}
