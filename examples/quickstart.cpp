// Quickstart: build a multiprogrammed SMP workload, run it under the Linux
// baseline and both bandwidth-aware policies, and compare turnarounds.
//
// This is the 10-line version of the paper: a memory-hungry application
// (SP-class) competes with streaming (BBMA) and cache-resident (nBBMA)
// microbenchmarks on a 4-way SMP; the bandwidth-aware gang policies pair
// high- and low-bandwidth jobs and beat the oblivious time-sharing baseline.
#include <cstdio>

#include "experiments/runner.h"
#include "workload/workload.h"

int main() {
  using namespace bbsched;

  experiments::ExperimentConfig cfg;  // 4 Xeon-class CPUs, 29.5 trans/us bus
  cfg.time_scale = 0.1;               // shrink job durations for a demo

  // The paper's Fig. 2C workload for SP: two 2-thread instances of the
  // application plus two BBMA and two nBBMA microbenchmarks (8 threads on
  // 4 processors, multiprogramming degree 2).
  const auto& app = workload::paper_application("SP");
  const auto w = workload::fig2_mixed(app, cfg.machine.bus);

  std::printf("workload: %s\n\n", w.name.c_str());
  std::printf("%-18s %16s %12s\n", "scheduler", "app turnaround", "vs linux");

  double t_linux = 0.0;
  for (const auto kind : {experiments::SchedulerKind::kLinux,
                          experiments::SchedulerKind::kLatestQuantum,
                          experiments::SchedulerKind::kQuantaWindow}) {
    const auto result = experiments::run_workload(w, kind, cfg);
    const double t_sec = result.measured_mean_turnaround_us / 1e6;
    if (kind == experiments::SchedulerKind::kLinux) t_linux = t_sec;
    const double gain = 100.0 * (t_linux - t_sec) / t_linux;
    std::printf("%-18s %14.2f s %+10.1f%%\n", result.scheduler.c_str(), t_sec,
                gain);
  }
  return 0;
}
