// Workload explorer: build a custom multiprogrammed mix from the paper's
// applications and microbenchmarks, run it under every scheduler, and
// compare turnarounds, bus utilization and scheduling behaviour.
//
// Usage:
//   workload_explorer [jobs...]
//     each job is NAME[xN], e.g.  SP CG BBMA BBMAx2 nBBMA Radiosityx2
//   default mix: SP CG BBMAx2 nBBMAx2
//
// Example:
//   ./workload_explorer MG Raytrace BBMAx3 nBBMA
#include <cstdio>
#include <string>
#include <vector>

#include "experiments/parallel.h"
#include "experiments/runner.h"
#include "workload/workload.h"

namespace {

using namespace bbsched;

struct ParsedJob {
  std::string name;
  int count = 1;
};

ParsedJob parse_job(const std::string& arg) {
  ParsedJob out;
  const auto x = arg.rfind('x');
  if (x != std::string::npos && x + 1 < arg.size() &&
      std::isdigit(static_cast<unsigned char>(arg[x + 1]))) {
    out.name = arg.substr(0, x);
    out.count = std::stoi(arg.substr(x + 1));
  } else {
    out.name = arg;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  experiments::ExperimentConfig cfg;
  cfg.time_scale = 0.1;  // demo-sized jobs

  std::vector<ParsedJob> requested;
  for (int i = 1; i < argc; ++i) requested.push_back(parse_job(argv[i]));
  if (requested.empty()) {
    requested = {{"SP", 1}, {"CG", 1}, {"BBMA", 2}, {"nBBMA", 2}};
  }

  workload::Workload w;
  w.name = "custom mix";
  std::uint64_t seed = 11;
  for (const auto& job : requested) {
    for (int i = 0; i < job.count; ++i) {
      if (job.name == "BBMA") {
        w.jobs.push_back(workload::make_bbma_job(cfg.machine.bus));
      } else if (job.name == "nBBMA") {
        w.jobs.push_back(workload::make_nbbma_job());
      } else {
        w.jobs.push_back(workload::make_app_job(
            workload::paper_application(job.name), cfg.machine.bus, 2,
            seed += 13));
        w.measured.push_back(w.jobs.size() - 1);
      }
    }
  }
  if (w.measured.empty()) {
    std::fprintf(stderr, "mix needs at least one application\n");
    return 1;
  }

  std::printf("mix:");
  for (const auto& j : w.jobs) std::printf(" %s", j.name.c_str());
  std::printf("   (4 CPUs, bus %.1f trans/us)\n\n", cfg.machine.bus.capacity_tps);

  std::printf("%-16s %14s %12s %11s %11s %11s\n", "scheduler",
              "app turnaround", "bus util", "saturated", "elections",
              "migrations");
  // All scheduler comparisons are independent runs — fan them out through
  // the parallel harness (results land in request order).
  std::vector<experiments::RunRequest> requests;
  for (const auto kind : {experiments::SchedulerKind::kLinux,
                          experiments::SchedulerKind::kLatestQuantum,
                          experiments::SchedulerKind::kQuantaWindow}) {
    requests.push_back({w, kind, cfg});
  }
  const auto runs = experiments::run_workloads_parallel(requests);
  for (const auto& r : runs) {
    std::printf("%-16s %12.2f s %11.1f%% %10.1f%% %11llu %11llu\n",
                r.scheduler.c_str(), r.measured_mean_turnaround_us / 1e6,
                100.0 * r.engine_stats.bus_utilization.mean(),
                100.0 * static_cast<double>(r.engine_stats.saturated_ticks) /
                    static_cast<double>(r.engine_stats.total_ticks),
                static_cast<unsigned long long>(r.elections),
                static_cast<unsigned long long>(r.migrations));
  }

  std::printf(
      "\nPer-job turnarounds under quanta-window (0 = background job):\n");
  const auto& r = runs[2];
  for (std::size_t i = 0; i < w.jobs.size(); ++i) {
    std::printf("  %-12s %8.2f s   %12.0f transactions\n",
                w.jobs[i].name.c_str(), r.turnaround_us[i] / 1e6,
                r.job_transactions[i]);
  }
  return 0;
}
