// Native CPU-manager demo: the real user-space gang scheduler from §4 of
// the paper running on THIS machine — UNIX socket, shared-memory arenas,
// and SIGUSR1/SIGUSR2 block/unblock — managing real memory-walking kernels:
//
//   * one BBMA  (column-wise walk of 2x the L2: ~0% hit rate),
//   * one nBBMA (row-wise walk of half the L2: ~100% hit rate),
//   * one synthetic "application" crediting an SP-class transaction rate.
//
// Every second the demo prints which applications the manager elected and
// the per-thread bandwidth estimates it derived from the arenas.
//
// Usage: native_manager [seconds] [latest|window]
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unistd.h>

#include "runtime/client.h"
#include "runtime/manager_server.h"
#include "runtime/microbench.h"

namespace {

using namespace bbsched;
using namespace std::chrono_literals;

struct App {
  const char* name;
  double synthetic_tps;  ///< <0: BBMA kernel, 0: nBBMA kernel, >0: synthetic
  std::thread thread;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sweeps{0};
};

void app_main(App& app, const std::string& socket_path) {
  runtime::Client client;
  if (!client.connect(socket_path, app.name, 1)) {
    std::fprintf(stderr, "%s: cannot reach the manager\n", app.name);
    return;
  }
  const int slot = client.leader_counter_slot();
  client.ready();

  runtime::KernelStats stats;
  if (app.synthetic_tps < 0) {
    stats = runtime::run_bbma(app.stop, slot);
  } else if (app.synthetic_tps == 0) {
    stats = runtime::run_nbbma(app.stop, slot);
  } else {
    stats = runtime::run_synthetic(app.stop, slot, app.synthetic_tps);
  }
  app.sweeps.store(stats.iterations);

  client.unregister_worker();
  client.disconnect();
}

}  // namespace

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 6;
  const bool window = argc > 2 && std::strcmp(argv[2], "window") == 0;

  runtime::ServerConfig cfg;
  cfg.socket_path =
      "/tmp/bbsched-demo-" + std::to_string(::getpid()) + ".sock";
  cfg.manager.policy = window ? core::PolicyKind::kQuantaWindow
                              : core::PolicyKind::kLatestQuantum;
  cfg.manager.quantum_us = 200'000;  // the paper's 200 ms quantum
  cfg.nprocs = 2;  // pretend a 2-way SMP so elections are interesting

  runtime::ManagerServer server(cfg);
  if (!server.start()) {
    std::fprintf(stderr, "failed to start the CPU manager server\n");
    return 1;
  }
  std::printf("CPU manager up (%s policy, %llu ms quantum, %d procs)\n",
              core::to_string(cfg.manager.policy),
              static_cast<unsigned long long>(cfg.manager.quantum_us / 1000),
              cfg.nprocs);

  App apps[3] = {{"bbma", -1.0, {}, {}, {}},
                 {"nbbma", 0.0, {}, {}, {}},
                 {"sp-like", 9.3, {}, {}, {}}};
  for (auto& app : apps) {
    app.thread = std::thread([&app, &cfg] { app_main(app, cfg.socket_path); });
    std::this_thread::sleep_for(50ms);
  }

  for (int s = 0; s < seconds; ++s) {
    std::this_thread::sleep_for(1s);
    std::printf("\n[t=%ds] elections so far: %llu\n", s + 1,
                static_cast<unsigned long long>(server.elections()));
    std::printf("  running now:");
    for (const auto& name : server.running_app_names()) {
      std::printf(" %s", name.c_str());
    }
    std::printf("\n  BBW/thread estimates (trans/us):");
    for (const auto& [name, est] : server.estimates()) {
      std::printf("  %s=%.2f", name.c_str(), est);
    }
    std::printf("\n");
  }

  for (auto& app : apps) app.stop.store(true);
  server.stop();  // unblocks everyone
  for (auto& app : apps) app.thread.join();

  std::printf("\nkernel sweeps completed: bbma=%llu nbbma=%llu sp=%llu\n",
              static_cast<unsigned long long>(apps[0].sweeps.load()),
              static_cast<unsigned long long>(apps[1].sweeps.load()),
              static_cast<unsigned long long>(apps[2].sweeps.load()));
  std::printf("note: on modern hosts the absolute rates differ from the\n"
              "2003 Xeon, but the manager still separates the streaming\n"
              "kernel from the cache-resident one by orders of magnitude.\n");
  return 0;
}
