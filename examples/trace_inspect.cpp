// Replays a JSONL observability trace and explains, quantum by quantum, why
// the manager elected the applications it did: every candidate's bandwidth
// estimate, the fitness score it earned, the allocation order, head-of-list
// starvation guards, the bus utilization the decision produced, and who got
// evicted as a result.
//
// Usage:
//   trace_inspect FILE.jsonl [--quantum=N] [--limit=N]
//   trace_inspect --demo
//
// FILE.jsonl comes from any bench's --trace-out=FILE.jsonl flag (the .jsonl
// suffix selects the lossless line format; without it the benches emit
// Chrome trace JSON for chrome://tracing, which this tool does not read).
// --demo runs a quick traced simulation (two SP instances + four BBMA
// streamers under Latest-Quantum), exports it to JSONL in memory and
// inspects that — a self-contained tour of the event schema.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/fig2.h"
#include "experiments/runner.h"
#include "obs/export.h"
#include "obs/json.h"
#include "workload/workload.h"

namespace {

using namespace bbsched;

struct Candidate {
  int app = -1;
  int nthreads = 0;
  double bbw = 0.0;
  double abbw = 0.0;
  double score = 0.0;
  int alloc_order = -1;
  bool elected = false;
  bool head_default = false;
};

struct Quantum {
  std::uint64_t index = 0;
  std::uint64_t start_us = 0;
  int nprocs = 0;
  int candidates = 0;
  std::vector<Candidate> decisions;
  // Bus behaviour and state changes observed until the next quantum.
  double util_sum = 0.0;
  std::uint64_t bus_ticks = 0;
  std::uint64_t saturated_ticks = 0;
  std::vector<std::string> transitions;
};

/// Parses one JSONL line into the per-quantum aggregation.
bool ingest_line(const std::string& line, std::map<std::uint64_t, Quantum>& qs,
                 std::uint64_t& current, std::size_t lineno) {
  obs::json::Value v;
  std::string err;
  if (!obs::json::parse(line, v, &err)) {
    std::cerr << "line " << lineno << ": " << err << '\n';
    return false;
  }
  const std::string type = v.string_or("type", "");
  if (type == "QuantumStart") {
    current = static_cast<std::uint64_t>(v.number_or("quantum", 0));
    Quantum& q = qs[current];
    q.index = current;
    q.start_us = static_cast<std::uint64_t>(v.number_or("t", 0));
    q.nprocs = static_cast<int>(v.number_or("nprocs", 0));
    q.candidates = static_cast<int>(v.number_or("candidates", 0));
  } else if (type == "ElectionDecision") {
    Quantum& q = qs[static_cast<std::uint64_t>(v.number_or("quantum", 0))];
    Candidate c;
    c.app = static_cast<int>(v.number_or("app", -1));
    c.nthreads = static_cast<int>(v.number_or("nthreads", 0));
    c.bbw = v.number_or("bbw_per_thread", 0.0);
    c.abbw = v.number_or("abbw_per_proc", 0.0);
    c.score = v.number_or("score", 0.0);
    c.alloc_order = static_cast<int>(v.number_or("alloc_order", -1));
    if (const auto* e = v.find("elected")) c.elected = e->boolean;
    if (const auto* h = v.find("head_default")) c.head_default = h->boolean;
    q.decisions.push_back(c);
  } else if (type == "BusResolution") {
    Quantum& q = qs[current];
    q.util_sum += v.number_or("utilization", 0.0);
    ++q.bus_ticks;
    if (const auto* s = v.find("saturated")) {
      if (s->boolean) ++q.saturated_ticks;
    }
  } else if (type == "JobStateChange") {
    Quantum& q = qs[current];
    std::ostringstream t;
    t << "app " << static_cast<int>(v.number_or("app", -1));
    const int thread = static_cast<int>(v.number_or("thread", -1));
    if (thread >= 0) t << " thread " << thread;
    t << ": " << v.string_or("from", "?") << " -> " << v.string_or("to", "?");
    q.transitions.push_back(t.str());
  }
  // CounterSample events are summarized implicitly through bbw_per_thread.
  return true;
}

void print_quantum(const Quantum& q) {
  std::printf("quantum %llu @ %.1f ms — %d candidate%s for %d processor%s\n",
              static_cast<unsigned long long>(q.index),
              static_cast<double>(q.start_us) / 1000.0, q.candidates,
              q.candidates == 1 ? "" : "s", q.nprocs,
              q.nprocs == 1 ? "" : "s");
  for (const auto& c : q.decisions) {
    std::printf("  app %-3d %d thr  bbw/thr %7.3f  abbw/proc %7.3f  "
                "score %8.2f",
                c.app, c.nthreads, c.bbw, c.abbw, c.score);
    if (c.elected) {
      std::printf("  ELECTED #%d%s", c.alloc_order,
                  c.head_default ? " (head-of-list starvation guard)" : "");
    } else {
      std::printf("  passed over");
    }
    std::printf("\n");
  }
  if (q.bus_ticks > 0) {
    std::printf("  bus: mean utilization %5.1f%%, saturated %5.1f%% of %llu "
                "ticks\n",
                100.0 * q.util_sum / static_cast<double>(q.bus_ticks),
                100.0 * static_cast<double>(q.saturated_ticks) /
                    static_cast<double>(q.bus_ticks),
                static_cast<unsigned long long>(q.bus_ticks));
  }
  for (const auto& t : q.transitions) {
    std::printf("  state: %s\n", t.c_str());
  }
}

/// Runs the self-contained demo: a traced Latest-Quantum run of the paper's
/// saturated SP workload, exported to JSONL in memory.
std::string demo_jsonl() {
  obs::Tracer tracer({.enabled = true});
  experiments::ExperimentConfig cfg;
  cfg.time_scale = 0.05;  // a handful of quanta is plenty for a tour
  cfg.tracer = &tracer;
  const auto w = experiments::make_fig2_workload(
      experiments::Fig2Set::kSaturated, workload::paper_application("SP"),
      cfg.machine.bus);
  auto engine = experiments::make_engine(
      w, experiments::SchedulerKind::kLatestQuantum, cfg);
  (void)engine->run();
  std::ostringstream os;
  obs::write_jsonl(os, tracer);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool demo = false;
  long long only_quantum = -1;
  std::size_t limit = 0;  // 0 = no limit
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg.rfind("--quantum=", 0) == 0) {
      only_quantum = std::stoll(arg.substr(10));
    } else if (arg.rfind("--limit=", 0) == 0) {
      limit = std::stoull(arg.substr(8));
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    }
  }
  if (!demo && path.empty()) {
    std::cerr << "usage: trace_inspect FILE.jsonl [--quantum=N] [--limit=N]\n"
                 "       trace_inspect --demo\n";
    return 2;
  }

  std::istringstream demo_stream;
  std::ifstream file_stream;
  std::istream* in = nullptr;
  if (demo) {
    std::cerr << "[demo] tracing 2x SP + 4 BBMA under Latest-Quantum...\n";
    demo_stream.str(demo_jsonl());
    in = &demo_stream;
  } else {
    file_stream.open(path);
    if (!file_stream) {
      std::cerr << "cannot open " << path << '\n';
      return 2;
    }
    in = &file_stream;
  }

  std::map<std::uint64_t, Quantum> quanta;
  std::uint64_t current = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(*in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (!ingest_line(line, quanta, current, lineno)) return 1;
  }
  if (quanta.empty()) {
    std::cerr << "no events found — was the trace written with "
                 "--trace-out=FILE.jsonl (JSONL, not Chrome JSON)?\n";
    return 1;
  }

  std::size_t printed = 0;
  for (const auto& [index, q] : quanta) {
    if (only_quantum >= 0 &&
        index != static_cast<std::uint64_t>(only_quantum)) {
      continue;
    }
    print_quantum(q);
    if (limit > 0 && ++printed >= limit) {
      std::printf("... (%zu more quanta; raise --limit)\n",
                  quanta.size() - printed);
      break;
    }
  }
  return 0;
}
