// Trace replay: feed a measured bus-demand trace (CSV) into the simulator
// as an application, and see how the policies schedule it against the
// microbenchmarks. This is the workflow for users who sampled their own
// code's transaction rates with hardware counters (exactly what the paper's
// CPU manager collects) and want to predict scheduling behaviour offline.
//
// Usage: trace_replay [trace.csv]        (default: data/example_trace.csv)
#include <cstdio>
#include <exception>
#include <string>

#include "experiments/runner.h"
#include "workload/trace_demand.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace bbsched;
  const std::string path = argc > 1 ? argv[1] : "data/example_trace.csv";

  std::vector<workload::TraceSegment> segments;
  try {
    segments = workload::load_trace_csv(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_replay: %s\n", e.what());
    std::fprintf(stderr, "run from the repository root, or pass a trace "
                         "file: trace_replay my_trace.csv\n");
    return 1;
  }

  workload::TraceDemand demand(segments);
  std::printf("trace: %zu segments, period %.0f ms, mean %.2f trans/us\n",
              segments.size(), demand.period_us() / 1000.0,
              demand.mean_tps());

  experiments::ExperimentConfig cfg;
  cfg.time_scale = 1.0;

  workload::Workload w;
  w.name = "traced app + twin + 2 BBMA + 2 nBBMA";
  w.jobs.push_back(workload::make_trace_job("traced", segments, 2, 4.0e6));
  w.jobs.push_back(workload::make_trace_job("traced", segments, 2, 4.0e6));
  w.measured = {0, 1};
  w.jobs.push_back(workload::make_bbma_job(cfg.machine.bus));
  w.jobs.push_back(workload::make_bbma_job(cfg.machine.bus));
  w.jobs.push_back(workload::make_nbbma_job());
  w.jobs.push_back(workload::make_nbbma_job());

  std::printf("\n%-16s %16s %10s\n", "scheduler", "app turnaround",
              "vs linux");
  double t_linux = 0.0;
  for (const auto kind : {experiments::SchedulerKind::kLinux,
                          experiments::SchedulerKind::kLatestQuantum,
                          experiments::SchedulerKind::kQuantaWindow}) {
    const auto r = experiments::run_workload(w, kind, cfg);
    const double t = r.measured_mean_turnaround_us / 1e6;
    if (kind == experiments::SchedulerKind::kLinux) t_linux = t;
    std::printf("%-16s %14.2f s %+9.1f%%\n", r.scheduler.c_str(), t,
                100.0 * (t_linux - t) / t_linux);
  }
  return 0;
}
