// Policy playground: watch the paper's election algorithm work, quantum by
// quantum. Prints the applications-list order, each candidate's BBW/thread
// estimate, the evolving ABBW/proc, the fitness values of Eq. 1 and the
// elected gang — the exact arithmetic of §4 on live simulated counters.
//
// Usage: policy_playground [latest|window] [quanta]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/managed_scheduler.h"
#include "sim/engine.h"
#include "workload/workload.h"

namespace {

using namespace bbsched;

/// Replays the §4 election arithmetic for display purposes.
void explain_election(const core::CpuManager& mgr, int nprocs) {
  std::vector<core::Candidate> candidates;
  for (int id : mgr.order()) {
    candidates.push_back({id, mgr.app(id).nthreads, mgr.policy_estimate(id)});
  }

  std::printf("  list:");
  for (const auto& c : candidates) {
    std::printf(" %s(%.2f)", mgr.app(c.app_id).name.c_str(),
                c.bbw_per_thread);
  }
  std::printf("\n");

  // Head-of-list default allocation.
  double allocated_bw = 0.0;
  int free_procs = nprocs;
  std::vector<bool> taken(candidates.size(), false);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].nthreads <= free_procs) {
      taken[i] = true;
      free_procs -= candidates[i].nthreads;
      allocated_bw += candidates[i].bbw_per_thread * candidates[i].nthreads;
      std::printf("  head: %s elected by default\n",
                  mgr.app(candidates[i].app_id).name.c_str());
      break;
    }
  }

  while (free_procs > 0) {
    const double abbw =
        core::abbw_per_proc(mgr.config().total_bus_bw_tps, allocated_bw,
                            free_procs);
    std::printf("  ABBW/proc = %.2f trans/us over %d free procs\n", abbw,
                free_procs);
    double best = -1.0;
    std::size_t best_idx = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i] || candidates[i].nthreads > free_procs) continue;
      const double f = core::fitness(abbw, candidates[i].bbw_per_thread);
      std::printf("    fitness(%s) = 1000/(1+|%.2f-%.2f|) = %.0f\n",
                  mgr.app(candidates[i].app_id).name.c_str(), abbw,
                  candidates[i].bbw_per_thread, f);
      if (f > best) {
        best = f;
        best_idx = i;
      }
    }
    if (best_idx == candidates.size()) {
      std::printf("    nothing fits: %d processor(s) stay idle\n",
                  free_procs);
      break;
    }
    taken[best_idx] = true;
    free_procs -= candidates[best_idx].nthreads;
    allocated_bw +=
        candidates[best_idx].bbw_per_thread * candidates[best_idx].nthreads;
    std::printf("    -> elect %s\n",
                mgr.app(candidates[best_idx].app_id).name.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool window = argc > 1 && std::strcmp(argv[1], "window") == 0;
  const int quanta = argc > 2 ? std::atoi(argv[2]) : 8;

  sim::MachineConfig mcfg;
  sim::EngineConfig ecfg;
  core::ManagedSchedulerConfig scfg;
  scfg.manager.policy = window ? core::PolicyKind::kQuantaWindow
                               : core::PolicyKind::kLatestQuantum;

  auto scheduler = std::make_unique<core::ManagedScheduler>(scfg);
  auto* sched = scheduler.get();
  sim::Engine eng(mcfg, ecfg, std::move(scheduler));

  // The paper's Fig.-2C environment for SP: the most instructive mix.
  const auto w = workload::fig2_mixed(
      workload::paper_application("SP"), mcfg.bus);
  for (const auto& job : w.jobs) eng.add_job(job);

  std::printf("policy: %s   machine: %d CPUs, bus %.1f trans/us\n",
              core::to_string(scfg.manager.policy), mcfg.num_cpus,
              mcfg.bus.capacity_tps);
  std::printf("workload: %s\n", w.name.c_str());

  const sim::SimTime quantum = scfg.manager.quantum_us;
  eng.step();  // connect the applications and run the initial election
  for (int q = 0; q < quanta; ++q) {
    std::printf("\n=== quantum %d (t = %.1f s) ===\n", q,
                static_cast<double>(eng.now()) / 1e6);
    explain_election(sched->manager(), mcfg.num_cpus);
    std::printf("  running:");
    for (int id : sched->manager().running()) {
      std::printf(" %s", sched->manager().app(id).name.c_str());
    }
    std::printf("\n");
    eng.run_until(eng.now() + quantum);
    if (eng.machine().all_finite_jobs_done()) break;
  }

  std::printf("\n(the estimates above are per-thread bus transaction rates "
              "sampled from the shared arenas, twice per quantum)\n");
  return 0;
}
